#include "stream/stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "support/aligned_buffer.hpp"
#include "support/timing.hpp"

namespace repro::stream {

namespace {

constexpr double kScalar = 3.0;

/// Run `body(first, last)` over a static partition of [0, n) on `threads`
/// threads and return the elapsed wall time of the slowest worker.
template <typename Body>
double parallel_region(std::size_t n, int threads, Body body) {
  if (threads <= 1) {
    const Timer timer;
    body(std::size_t{0}, n);
    return timer.elapsed();
  }
  const Timer timer;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const std::size_t first = n * static_cast<std::size_t>(t) /
                              static_cast<std::size_t>(threads);
    const std::size_t last = n * static_cast<std::size_t>(t + 1) /
                             static_cast<std::size_t>(threads);
    pool.emplace_back([=] { body(first, last); });
  }
  for (auto& t : pool) t.join();
  return timer.elapsed();
}

}  // namespace

StreamResult run_stream(std::size_t n, int trials, int threads,
                        std::shared_ptr<obs::MetricsRegistry> metrics) {
  if (n < 1000) throw std::invalid_argument("run_stream: array too small");
  if (trials < 1 || threads < 1) {
    throw std::invalid_argument("run_stream: bad trials/threads");
  }

  AlignedBuffer<double> a(n), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = 1.0;
    b[i] = 2.0;
    c[i] = 0.0;
  }

  double copy_t = 1e30, scale_t = 1e30, add_t = 1e30, triad_t = 1e30;
  double* pa = a.data();
  double* pb = b.data();
  double* pc = c.data();

  for (int trial = 0; trial < trials; ++trial) {
    copy_t = std::min(copy_t, parallel_region(n, threads,
        [=](std::size_t i0, std::size_t i1) {
          for (std::size_t i = i0; i < i1; ++i) pc[i] = pa[i];
        }));
    scale_t = std::min(scale_t, parallel_region(n, threads,
        [=](std::size_t i0, std::size_t i1) {
          for (std::size_t i = i0; i < i1; ++i) pb[i] = kScalar * pc[i];
        }));
    add_t = std::min(add_t, parallel_region(n, threads,
        [=](std::size_t i0, std::size_t i1) {
          for (std::size_t i = i0; i < i1; ++i) pc[i] = pa[i] + pb[i];
        }));
    triad_t = std::min(triad_t, parallel_region(n, threads,
        [=](std::size_t i0, std::size_t i1) {
          for (std::size_t i = i0; i < i1; ++i) pa[i] = pb[i] + kScalar * pc[i];
        }));
  }

  // STREAM validation: after `trials` rounds the arrays follow a recurrence;
  // verify a few entries to defeat dead-code elimination.
  double ea = 1.0, eb = 2.0, ec = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    ec = ea;
    eb = kScalar * ec;
    ec = ea + eb;
    ea = eb + kScalar * ec;
  }
  for (std::size_t i : {std::size_t{0}, n / 2, n - 1}) {
    if (std::fabs(a[i] - ea) > 1e-8 * std::fabs(ea) ||
        std::fabs(b[i] - eb) > 1e-8 * std::fabs(eb) ||
        std::fabs(c[i] - ec) > 1e-8 * std::fabs(ec)) {
      throw std::runtime_error("run_stream: validation failed");
    }
  }

  const double nb = static_cast<double>(n) * sizeof(double);
  StreamResult r;
  r.copy_Bps = 2.0 * nb / copy_t;
  r.scale_Bps = 2.0 * nb / scale_t;
  r.add_Bps = 3.0 * nb / add_t;
  r.triad_Bps = 3.0 * nb / triad_t;

  if (metrics) {
    const auto publish = [&](const char* kernel, double value) {
      metrics
          ->gauge("stream_bandwidth_bytes_per_second", {{"kernel", kernel}},
                  "Best STREAM kernel bandwidth")
          ->set(value);
    };
    publish("copy", r.copy_Bps);
    publish("scale", r.scale_Bps);
    publish("add", r.add_Bps);
    publish("triad", r.triad_Bps);
  }
  return r;
}

std::vector<TableOneRow> paper_table_one() {
  return {
      {"NaCL", "1-core", 9814.2, 10080.3, 10289.3, 10271.6},
      {"NaCL", "1-node", 40091.3, 26335.8, 28992.0, 28547.2},
      {"Stampede2", "1-core", 10632.6, 10772.0, 13427.1, 13440.0},
      {"Stampede2", "1-node", 176701.1, 178718.7, 192560.3, 193216.3},
  };
}

}  // namespace repro::stream
