// STREAM memory-bandwidth benchmark (McCalpin), the substrate for Table I.
//
// Four kernels over arrays a, b, c of length n:
//   COPY:  c = a          (16 B/elem)
//   SCALE: b = q*c        (16 B/elem)
//   ADD:   c = a + b      (24 B/elem)
//   TRIAD: a = b + q*c    (24 B/elem)
// Bandwidth is reported STREAM-style: bytes counted once per read and once
// per write, best (maximum) rate over the trials.
//
// The paper's measured Table I rows for NaCL and Stampede2 are carried as
// presets so the Table I bench can print paper-vs-measured side by side.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace repro::stream {

struct StreamResult {
  double copy_Bps = 0.0;
  double scale_Bps = 0.0;
  double add_Bps = 0.0;
  double triad_Bps = 0.0;
};

/// Run the four kernels `trials` times over arrays of `n` doubles each using
/// `threads` threads (static contiguous partition, OpenMP-style), and report
/// the best rate per kernel. Array contents are verified after the run; a
/// validation failure throws (guards against the compiler eliding the work).
/// `metrics`, when given, receives stream_bandwidth_bytes_per_second gauges
/// (label kernel="copy|scale|add|triad").
StreamResult run_stream(std::size_t n, int trials = 10, int threads = 1,
                        std::shared_ptr<obs::MetricsRegistry> metrics = {});

/// A recorded Table I row (MB/s, as printed in the paper).
struct TableOneRow {
  std::string system;
  std::string scale;  // "1-core" or "1-node"
  double copy_MBps;
  double scale_MBps;
  double add_MBps;
  double triad_MBps;
};

/// The paper's Table I, verbatim.
std::vector<TableOneRow> paper_table_one();

}  // namespace repro::stream
