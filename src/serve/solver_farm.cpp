#include "serve/solver_farm.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fault/checkpoint.hpp"
#include "net/persistent_channel.hpp"
#include "runtime/graph_transform.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/tile_map.hpp"
#include "support/timing.hpp"

namespace repro::serve {

namespace {

using stencil::Grid2D;

/// Thrown from the superstep hook to abort a window at a consistent state.
/// The runtime reports it like any task failure; the farm distinguishes
/// preemption from a genuine error by the job's preempt flag, not by message.
struct PreemptSignal : std::runtime_error {
  PreemptSignal() : std::runtime_error("serve: preempted at superstep") {}
};

std::shared_ptr<Grid2D> copy_grid(const Grid2D& src,
                                  const stencil::Problem& problem) {
  auto dst = std::make_shared<Grid2D>(src.rows(), src.cols());
  dst->fill(
      [&src](long i, long j) {
        return src.at(static_cast<int>(i), static_cast<int>(j));
      },
      problem.boundary);
  return dst;
}

}  // namespace

/// One admitted solve, from submit to terminal state. The dispatcher thread
/// owns all mutation except `preempt`, which any thread may set.
struct SolverFarm::Job {
  std::uint64_t id = 0;
  SolveRequest req;
  int lane = 0;
  long long admitted_cost = 0;
  bool preemptible = false;
  double submit_time = 0.0;
  double first_dispatch = -1.0;
  /// Iterations of the original problem completed and checkpointed.
  int done = 0;
  /// The consistent field at iteration `done` (windowed jobs only).
  std::shared_ptr<Grid2D> snapshot;
  fault::CheckpointStore store;
  std::atomic<bool> preempt{false};
  int preemptions = 0;
  int windows = 0;
  double run_s = 0.0;
  std::promise<SolveResponse> promise;

  long long remaining_cost() const {
    return static_cast<long long>(req.problem.rows) * req.problem.cols *
           (req.problem.iterations - done);
  }
};

SolverFarm::SolverFarm(FarmConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::MetricsRegistry>()),
      admission_(config_.admission),
      queue_(config_.quantum) {
  if (config_.node_rows < 1 || config_.node_cols < 1 ||
      config_.workers_per_rank < 1 || config_.quantum < 1 ||
      config_.max_batch_jobs < 1 || config_.preempt_cost_threshold < 1 ||
      config_.checkpoint_supersteps < 1) {
    throw std::invalid_argument("SolverFarm: config values must be >= 1");
  }
  rt::Config rc;
  rc.nranks = nodes();
  rc.workers_per_rank = config_.workers_per_rank;
  rc.dedicated_comm_thread = config_.dedicated_comm_thread;
  rc.scheduler = config_.scheduler;
  rc.sched_seed = config_.sched_seed;
  rc.sched_test_hook = config_.sched_test_hook;
  rc.metrics = metrics_;
  if (config_.persistent) {
    // Each wave gets a fresh channel from this factory (Runtime::run builds
    // one per run), so route negotiation restarts cleanly per wave even
    // though the runtime itself is resident.
    rc.channel_factory = net::persistent_channel_factory({}, metrics_);
  }
  runtime_ = std::make_unique<rt::Runtime>(rc);
  if (config_.telemetry || !config_.telemetry_dump.empty()) {
    config_.telemetry = true;
    telemetry_ = config_.telemetry_collector
                     ? config_.telemetry_collector
                     : std::make_shared<obs::TelemetryCollector>(
                           nodes(), config_.telemetry_detectors, metrics_,
                           "serve");
    cumulative_.assign(static_cast<std::size_t>(nodes()),
                       obs::TelemetrySnapshot{});
    // Resume where a shared collector left off: counters stay monotonic and
    // the wave odometer keeps counting instead of restarting at 0 (which
    // would read as every rank regressing — a spurious straggler storm).
    for (const obs::TelemetrySnapshot& s : telemetry_->latest()) {
      if (s.rank < 0 || s.rank >= nodes()) continue;
      cumulative_[static_cast<std::size_t>(s.rank)] = s;
      wave_index_ = std::max(wave_index_, s.superstep + 1);
    }
  }

  queue_depth_ = metrics_->gauge("serve_queue_depth", {},
                                 "Jobs admitted and not yet terminal");
  waves_batch_ = metrics_->counter("serve_waves_total", {{"kind", "batch"}},
                                   "Dispatched waves, by kind");
  waves_window_ = metrics_->counter("serve_waves_total", {{"kind", "window"}},
                                    "Dispatched waves, by kind");
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

SolverFarm::~SolverFarm() {
  bool already = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    already = stopping_;
  }
  if (!already) shutdown(false);
  if (dispatcher_.joinable()) dispatcher_.join();
}

RejectReason SolverFarm::validate(const SolveRequest& request) const {
  const stencil::Problem& p = request.problem;
  if (p.rows < 1 || p.cols < 1 || p.iterations < 1) {
    return RejectReason::BadRequest;
  }
  if (request.mb < 1 || request.nb < 1 || request.steps < 1 ||
      request.fuse_depth < 1) {
    return RejectReason::BadRequest;
  }
  if (p.shape && p.coefficient) return RejectReason::BadRequest;
  if (request.kernel == stencil::KernelVariant::Temporal &&
      (p.shape || p.coefficient)) {
    return RejectReason::BadRequest;
  }
  try {
    if (p.shape) p.shape->validate();
    const stencil::TileMap map(p.rows, p.cols, request.mb, request.nb,
                               config_.node_rows, config_.node_cols);
    const int radius = p.shape ? p.shape->radius : 1;
    // The fused window multiplies the ghost depth; mirror the builder's
    // radius * steps * fuse bound so a doomed request is rejected up front.
    if (radius * request.steps * request.fuse_depth > map.min_tile_extent()) {
      return RejectReason::BadRequest;
    }
  } catch (const std::exception&) {
    return RejectReason::BadRequest;
  }
  return RejectReason::None;
}

int SolverFarm::lane_for_locked(const std::string& tenant) {
  const auto it = lanes_.find(tenant);
  if (it != lanes_.end()) return it->second;
  const int lane = static_cast<int>(lanes_.size());
  lanes_.emplace(tenant, lane);
  stats_[tenant].tenant = tenant;
  stats_[tenant].lane = lane;
  return lane;
}

std::shared_ptr<obs::Counter> SolverFarm::tenant_counter(
    const std::string& name, const std::string& tenant,
    const std::string& help) {
  return metrics_->counter(name, {{"tenant", tenant}}, help);
}

SolverFarm::Submission SolverFarm::submit(SolveRequest request) {
  Submission out;
  const long long cost = request_cost(request);
  RejectReason reason = validate(request);
  if (reason == RejectReason::None) {
    reason = admission_.try_admit(request.tenant, cost);
  }
  if (reason != RejectReason::None) {
    std::string label;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Unknown tenants fold into one "other" row/series so a reject storm
      // from arbitrary tenant names cannot grow state without bound.
      label = lanes_.count(request.tenant) != 0 ? request.tenant : "other";
      TenantStats& s = stats_[label];
      if (s.tenant.empty()) s.tenant = label;
      ++s.submitted;
      ++s.rejected;
    }
    tenant_counter("serve_requests_total", label, "Requests submitted")->inc();
    metrics_
        ->counter("serve_rejected_total",
                  {{"tenant", label}, {"reason", reject_reason_name(reason)}},
                  "Requests rejected, by reason")
        ->inc();
    out.rejected = reason;
    return out;
  }

  auto job = std::make_shared<Job>();
  job->req = std::move(request);
  job->admitted_cost = cost;
  job->preemptible = cost >= config_.preempt_cost_threshold;
  job->submit_time = wall_time();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->id = next_id_++;
    job->lane = lane_for_locked(job->req.tenant);
    TenantStats& s = stats_[job->req.tenant];
    ++s.submitted;
    ++s.accepted;
    // Fused jobs always dispatch alone: rt::fuse_supersteps rewrites every
    // fusable chain of the wave's graph, which must not touch co-batched
    // tenants' subgraphs.
    queue_.push(job->lane, cost, job, /*solo=*/job->req.fuse_depth > 1);
    jobs_.emplace(job->id, job);
    queue_depth_->set(static_cast<double>(jobs_.size()));
    if (config_.preempt_on_deadline_submit && job->req.deadline_s > 0) {
      if (const JobPtr running = running_.lock();
          running && running->req.tenant != job->req.tenant) {
        running->preempt.store(true, std::memory_order_relaxed);
      }
    }
  }
  tenant_counter("serve_requests_total", job->req.tenant,
                 "Requests submitted")
      ->inc();
  out.job_id = job->id;
  out.response = job->promise.get_future();
  cv_.notify_one();
  return out;
}

bool SolverFarm::preempt(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  it->second->preempt.store(true, std::memory_order_relaxed);
  return true;
}

void SolverFarm::shutdown(bool drain) {
  admission_.close();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (!drain) {
      drain_ = false;
      if (const JobPtr running = running_.lock()) {
        running->preempt.store(true, std::memory_order_relaxed);
      }
    }
  }
  cv_.notify_all();
}

void SolverFarm::dispatcher_loop() {
  for (;;) {
    std::vector<JobPtr> wave;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && (!drain_ || queue_.empty())) break;
      wave = queue_.pop_wave(static_cast<std::size_t>(config_.max_batch_jobs),
                             config_.preempt_cost_threshold);
    }
    if (wave.empty()) continue;
    if (wave.size() == 1 && wave[0]->preemptible) {
      run_window(wave[0]);
    } else {
      run_batch(wave);
    }
  }
  // Cancel whatever is still queued (shutdown without drain, or jobs that
  // arrived after the drain decision).
  std::vector<JobPtr> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftovers = queue_.drain_all();
  }
  for (const JobPtr& job : leftovers) cancel(job);
}

namespace {

stencil::DistConfig make_dist_config(const SolveRequest& req, int node_rows,
                                     int node_cols, std::uint32_t key_space,
                                     int lane, bool persistent) {
  stencil::DistConfig cfg;
  cfg.decomp = {req.mb, req.nb, node_rows, node_cols};
  cfg.steps = req.steps;
  cfg.fuse_depth = req.fuse_depth;
  cfg.kernel = req.kernel;
  cfg.key_space = key_space;
  cfg.lane = lane;
  cfg.persistent = persistent;
  // Per-job task priorities span 0..2; a bias of 3 lifts every task of a
  // deadline job above every task of a best-effort one.
  cfg.priority_bias = req.deadline_s > 0 ? 3 : 0;
  return cfg;
}

}  // namespace

void SolverFarm::run_batch(std::vector<JobPtr>& wave) {
  rt::TaskGraph graph;
  std::vector<stencil::SolveSubgraph> subgraphs;
  subgraphs.reserve(wave.size());
  const double start = wall_time();
  for (const JobPtr& job : wave) {
    if (job->first_dispatch < 0) job->first_dispatch = start;
  }
  std::string error;
  try {
    for (std::size_t i = 0; i < wave.size(); ++i) {
      subgraphs.push_back(stencil::add_solve_subgraph(
          graph, wave[i]->req.problem,
          make_dist_config(wave[i]->req, config_.node_rows, config_.node_cols,
                           static_cast<std::uint32_t>(i), wave[i]->lane,
                           config_.persistent)));
    }
    // Fused jobs arrive solo (the queue never co-batches them), so a
    // single-subgraph wave is the only shape the rewrite ever sees here.
    if (subgraphs.size() == 1) {
      if (const int window = subgraphs[0].fuse_window(); window > 1) {
        rt::fuse_supersteps(graph, window);
      }
    }
    waves_batch_->inc();
    runtime_->run(graph);
  } catch (const std::exception& e) {
    error = e.what();
  }
  const double elapsed = wall_time() - start;
  for (std::size_t i = 0; i < wave.size(); ++i) {
    const JobPtr& job = wave[i];
    job->run_s += elapsed;
    SolveResponse response;
    if (error.empty()) {
      response.status = JobStatus::Completed;
      response.grid = subgraphs[i].gather(*runtime_);
      response.iterations_done = job->req.problem.iterations;
    } else {
      response.status = JobStatus::Failed;
      response.error = error;
    }
    fulfill(job, std::move(response));
  }
  runtime_->release_run();
  sample_telemetry();
}

// One telemetry sample per dispatched wave: every rank of the resident
// runtime is scraped into the collector with the wave index standing in for
// the superstep, so repro_top's "superstep" column reads as waves served and
// the straggler detector flags a rank whose counters stop advancing across
// waves. Dispatcher thread only (wave_index_ is unsynchronized).
void SolverFarm::sample_telemetry() {
  if (!telemetry_) return;
  const std::uint64_t wave = wave_index_++;
  for (int rank = 0; rank < nodes(); ++rank) {
    const obs::TelemetrySnapshot raw = runtime_->rank_sample(rank);
    obs::TelemetrySnapshot& cum = cumulative_[static_cast<std::size_t>(rank)];
    // A raw sample covers only the wave that just finished (fresh counter
    // handles per run); fold it in so the collector sees monotonic series.
    cum.rank = rank;
    cum.superstep = wave;
    cum.tasks_executed += raw.tasks_executed;
    cum.sent_messages += raw.sent_messages;
    cum.sent_bytes += raw.sent_bytes;
    cum.steals += raw.steals;
    cum.idle_halo_s += raw.idle_halo_s;
    cum.idle_noready_s += raw.idle_noready_s;
    cum.idle_steal_s += raw.idle_steal_s;
    cum.queue_depth = raw.queue_depth;
    cum.t_s = raw.t_s;
    telemetry_->ingest(cum);
  }
  if (!config_.telemetry_dump.empty()) {
    telemetry_->write_dump(config_.telemetry_dump);
  }
}

void SolverFarm::run_window(const JobPtr& job) {
  const stencil::Problem& p = job->req.problem;
  const int steps = std::max(1, job->req.steps);
  const stencil::TileMap map(p.rows, p.cols, job->req.mb, job->req.nb,
                             config_.node_rows, config_.node_cols);
  const auto total_tiles =
      static_cast<std::size_t>(map.tiles_r()) * map.tiles_c();

  if (!job->snapshot) {
    job->snapshot = std::make_shared<Grid2D>(p.rows, p.cols);
    job->snapshot->fill(p.initial, p.boundary);
  }
  const int base = job->done;
  const int iters =
      std::min(config_.checkpoint_supersteps * steps, p.iterations - base);

  stencil::Problem sub = p;
  sub.iterations = iters;
  const std::shared_ptr<Grid2D> snapshot = job->snapshot;
  sub.initial = [snapshot](long i, long j) {
    return snapshot->at(static_cast<int>(i), static_cast<int>(j));
  };

  stencil::DistConfig cfg = make_dist_config(
      job->req, config_.node_rows, config_.node_cols, 0, job->lane,
      config_.persistent);
  const auto observer = config_.superstep_observer;
  const JobPtr hook_job = job;
  cfg.superstep_hook = [hook_job, base, observer](
                           int k, int ti, int tj,
                           const std::vector<double>& core) {
    hook_job->store.store(base + k, ti, tj, core);
    if (observer) observer(hook_job->id, base + k);
    // Yield only at a boundary with progress (k == 0 re-records the window
    // start — aborting there would spin without advancing).
    if (k > 0 && hook_job->preempt.load(std::memory_order_relaxed)) {
      throw PreemptSignal();
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = job;
  }
  if (job->first_dispatch < 0) job->first_dispatch = wall_time();
  ++job->windows;
  waves_window_->inc();

  rt::TaskGraph graph;
  std::string error;
  bool ok = true;
  const double start = wall_time();
  try {
    const stencil::SolveSubgraph subgraph =
        stencil::add_solve_subgraph(graph, sub, cfg);
    if (const int window = subgraph.fuse_window(); window > 1) {
      rt::fuse_supersteps(graph, window);
    }
    runtime_->run(graph);
    job->run_s += wall_time() - start;
    Grid2D result = subgraph.gather(*runtime_);
    runtime_->release_run();
    sample_telemetry();
    job->done = base + iters;
    job->store.trim_below(job->done);
    if (job->done >= p.iterations) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        running_.reset();
      }
      SolveResponse response;
      response.status = JobStatus::Completed;
      response.grid = std::move(result);
      response.iterations_done = job->done;
      fulfill(job, std::move(response));
      return;
    }
    job->snapshot = copy_grid(result, p);
  } catch (const std::exception& e) {
    ok = false;
    error = e.what();
    job->run_s += wall_time() - start;
    runtime_->release_run();
    sample_telemetry();
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_.reset();
  }

  if (!ok) {
    if (job->preempt.exchange(false, std::memory_order_relaxed)) {
      // Preempted: roll back to the newest complete superstep (possibly
      // ahead of the window start) and requeue at the lane front.
      ++job->preemptions;
      const int resume = job->store.last_complete_superstep(total_tiles);
      if (resume > job->done) {
        auto recovered = std::make_shared<Grid2D>(p.rows, p.cols);
        recovered->fill([](long, long) { return 0.0; }, p.boundary);
        for (const auto& [coord, core] : job->store.tiles(resume)) {
          const auto [ti, tj] = coord;
          const int h = map.tile_h(ti);
          const int w = map.tile_w(tj);
          for (int i = 0; i < h; ++i) {
            for (int j = 0; j < w; ++j) {
              recovered->at(map.row0(ti) + i, map.col0(tj) + j) =
                  core[static_cast<std::size_t>(i) * w + j];
            }
          }
        }
        job->snapshot = std::move(recovered);
        job->done = resume;
      }
      job->store.trim_below(job->done);
      tenant_counter("serve_preemptions_total", job->req.tenant,
                     "Superstep-boundary preemptions")
          ->inc();
    } else {
      SolveResponse response;
      response.status = JobStatus::Failed;
      response.error = error;
      response.iterations_done = job->done;
      fulfill(job, std::move(response));
      return;
    }
  }

  // Window done (or rolled back): requeue the remainder. push_front keeps
  // the job ahead of lane-mates so its checkpoints stay warm; DRR still
  // gives other lanes their quantum first.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_front(job->lane, job->remaining_cost(), job,
                      /*solo=*/job->req.fuse_depth > 1);
  }
  cv_.notify_one();
}

void SolverFarm::cancel(const JobPtr& job) {
  SolveResponse response;
  response.status = JobStatus::Cancelled;
  response.iterations_done = job->done;
  if (job->snapshot && job->done > 0) {
    // Hand back the checkpointed progress so a client (or a future farm)
    // can resume from iteration `done`.
    const Grid2D& snap = *job->snapshot;
    Grid2D progress(snap.rows(), snap.cols());
    progress.fill(
        [&snap](long i, long j) {
          return snap.at(static_cast<int>(i), static_cast<int>(j));
        },
        job->req.problem.boundary);
    response.grid = std::move(progress);
  }
  fulfill(job, std::move(response));
}

void SolverFarm::fulfill(const JobPtr& job, SolveResponse&& response) {
  response.job_id = job->id;
  response.tenant = job->req.tenant;
  response.preemptions = job->preemptions;
  response.windows = job->windows;
  response.run_s = job->run_s;
  const double now = wall_time();
  const double latency = now - job->submit_time;
  response.wait_s = job->first_dispatch >= 0
                        ? job->first_dispatch - job->submit_time
                        : latency;
  response.deadline_met =
      job->req.deadline_s <= 0 || latency <= job->req.deadline_s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantStats& s = stats_[job->req.tenant];
    switch (response.status) {
      case JobStatus::Completed:
        ++s.completed;
        s.goodput_points += job->admitted_cost;
        if (s.latency_s.size() < kMaxLatencySamples) {
          s.latency_s.push_back(latency);
        }
        break;
      case JobStatus::Failed:
        ++s.failed;
        break;
      case JobStatus::Cancelled:
        ++s.cancelled;
        break;
    }
    s.preemptions += static_cast<std::uint64_t>(job->preemptions);
    s.windows += static_cast<std::uint64_t>(job->windows);
    if (!response.deadline_met) ++s.deadline_misses;
    jobs_.erase(job->id);
    queue_depth_->set(static_cast<double>(jobs_.size()));
  }
  metrics_
      ->counter("serve_jobs_total",
                {{"tenant", job->req.tenant},
                 {"status", job_status_name(response.status)}},
                "Jobs reaching a terminal state, by status")
      ->inc();
  if (response.status == JobStatus::Completed) {
    tenant_counter("serve_goodput_points_total", job->req.tenant,
                   "Nominal point updates of completed jobs")
        ->add(static_cast<std::uint64_t>(job->admitted_cost));
    metrics_
        ->histogram("serve_latency_seconds", obs::duration_seconds_bounds(),
                    {{"tenant", job->req.tenant}},
                    "Submit-to-completion latency")
        ->observe(latency);
  }
  admission_.release(job->req.tenant, job->admitted_cost);
  job->promise.set_value(std::move(response));
}

std::vector<TenantStats> SolverFarm::tenant_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantStats> out;
  out.reserve(stats_.size());
  for (const auto& [tenant, s] : stats_) out.push_back(s);
  return out;
}

}  // namespace repro::serve
