// Admission control: bounded queueing with per-tenant quotas.
//
// Every SolveRequest passes through try_admit() before it may occupy queue
// or checkpoint memory; the controller therefore bounds the farm's total
// footprint by construction — a burst beyond the caps is rejected with a
// reason, never buffered. Quotas are held until the job reaches a terminal
// state (release()), so in-flight work counts against its tenant exactly
// like queued work. The distinct-tenant cap doubles as the bound on tenant
// label cardinality in the metrics registry.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "serve/serve.hpp"

namespace repro::serve {

struct AdmissionConfig {
  int max_queued = 64;                ///< global queued+running job cap
  int max_queued_per_tenant = 16;     ///< per-tenant job cap
  long long max_cost_per_tenant = 1LL << 26;  ///< per-tenant point-update cap
  int max_tenants = 32;               ///< distinct tenants ever admitted
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Admit `cost` units of work for `tenant`, or say why not. Thread-safe.
  RejectReason try_admit(const std::string& tenant, long long cost);

  /// Return the quota held by a finished (or never-dispatched) job. Must be
  /// called exactly once per successful try_admit, with the same arguments.
  void release(const std::string& tenant, long long cost);

  /// Reject everything from now on (ShuttingDown). Idempotent.
  void close();
  bool closed() const;

  /// Is `tenant` already known (admitted at least once)?
  bool knows(const std::string& tenant) const;

  struct Stats {
    int queued = 0;           ///< jobs currently holding quota
    long long queued_cost = 0;
    int tenants = 0;          ///< distinct tenants ever admitted
  };
  Stats stats() const;

 private:
  struct Tenant {
    int jobs = 0;
    long long cost = 0;
  };

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  bool closed_ = false;
  int queued_ = 0;
  long long queued_cost_ = 0;
  std::map<std::string, Tenant> tenants_;
};

}  // namespace repro::serve
