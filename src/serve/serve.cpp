#include "serve/serve.hpp"

namespace repro::serve {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::ShuttingDown: return "shutting_down";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::TenantQuota: return "tenant_quota";
    case RejectReason::TenantCost: return "tenant_cost";
    case RejectReason::TenantLimit: return "tenant_limit";
    case RejectReason::BadRequest: return "bad_request";
  }
  return "unknown";
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::Completed: return "completed";
    case JobStatus::Failed: return "failed";
    case JobStatus::Cancelled: return "cancelled";
  }
  return "unknown";
}

long long request_cost(const SolveRequest& request) {
  return static_cast<long long>(request.problem.rows) *
         request.problem.cols * request.problem.iterations;
}

}  // namespace repro::serve
