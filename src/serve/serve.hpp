// serve: a multi-tenant stencil solver service over the task runtime.
//
// The paper's solvers run one problem per process; this subsystem turns the
// same machinery into a resident "solver farm": one long-lived rt::Runtime
// instance accepts a stream of SolveRequests from concurrent client threads
// — mixed grid shapes, kernel variants, CA step sizes, deadlines, tenants —
// and multiplexes them fairly:
//
//   * admission.hpp — per-tenant quotas and bounded queueing; every request
//     is accepted or rejected-with-reason, never buffered without bound.
//   * fair_queue.hpp — deficit-round-robin dispatch across tenant lanes.
//   * solver_farm.hpp — the farm itself: small jobs are batched into shared
//     task graphs (distinct key_space per job), large jobs run in
//     checkpoint-delimited windows and can be preempted at CA superstep
//     boundaries, resuming bit-identically from fault::CheckpointStore.
//   * serve_report.hpp — the machine-readable repro.serve_report/v1 schema.
#pragma once

#include <cstdint>
#include <string>

#include "stencil/grid.hpp"
#include "stencil/kernel_opt.hpp"
#include "stencil/problem.hpp"

namespace repro::serve {

/// Why a request was not admitted. None means "accepted".
enum class RejectReason {
  None,
  ShuttingDown,  ///< farm is draining or stopped
  QueueFull,     ///< global queued-job cap reached
  TenantQuota,   ///< tenant's queued-job cap reached
  TenantCost,    ///< tenant's queued-cost cap reached
  TenantLimit,   ///< distinct-tenant cap reached (bounds label cardinality)
  BadRequest,    ///< request fails solver validation (shape, steps, tiles)
};

const char* reject_reason_name(RejectReason reason);

/// One solve, as submitted by a client. The node grid is a property of the
/// farm (its resident runtime has a fixed virtual process count); requests
/// choose everything else about the problem and its decomposition.
struct SolveRequest {
  std::string tenant = "default";
  stencil::Problem problem;
  int mb = 0;  ///< nominal tile rows
  int nb = 0;  ///< nominal tile cols
  int steps = 1;  ///< CA step size; 1 = base variant
  /// Fused-wavefront depth (DistConfig::fuse_depth analog): supersteps per
  /// exchange window = steps * fuse_depth. Jobs with fuse_depth > 1 are
  /// dispatched SOLO — never batched into a shared graph, because
  /// rt::fuse_supersteps rewrites every fusable chain of the wave's graph.
  /// Windowed dispatch and superstep-boundary preemption work unchanged:
  /// checkpoints keep the original `steps` cadence under fusing.
  int fuse_depth = 1;
  stencil::KernelVariant kernel = stencil::KernelVariant::Scalar;
  /// Soft latency target in seconds from submit; 0 = none. Deadline jobs get
  /// a task-priority boost and (configurably) preempt a running long job
  /// from another tenant.
  double deadline_s = 0.0;
};

/// The work unit the admission controller and the fair scheduler meter:
/// interior points times iterations (the solve's nominal point updates).
long long request_cost(const SolveRequest& request);

enum class JobStatus {
  Completed,  ///< solved; `grid` is the final field
  Failed,     ///< a task body threw; `error` says why
  Cancelled,  ///< farm shut down without drain; `grid` holds progress so far
};

const char* job_status_name(JobStatus status);

/// Terminal result of one job (move-only — it carries the solved field).
struct SolveResponse {
  std::uint64_t job_id = 0;
  std::string tenant;
  JobStatus status = JobStatus::Failed;
  std::string error;
  /// Final field (Completed), the last consistent state (Cancelled with
  /// progress), or a 1x1 placeholder (Failed / Cancelled before any work —
  /// Grid2D requires dimensions >= 1, so there is no empty grid).
  stencil::Grid2D grid{1, 1};
  int iterations_done = 0;  ///< completed Jacobi sweeps (== problem
                            ///< iterations when Completed)
  double wait_s = 0.0;      ///< submit -> first dispatch
  double run_s = 0.0;       ///< wall time inside runtime waves
  int preemptions = 0;      ///< times the job yielded at a superstep boundary
  int windows = 0;          ///< checkpoint windows executed (0 for batched)
  bool deadline_met = true; ///< false iff deadline_s > 0 and latency exceeded it
};

}  // namespace repro::serve
