// Machine-readable serve-mode reports, sibling of obs::RunReport.
//
// Schema "repro.serve_report/v1":
//
//   {
//     "schema":  "repro.serve_report/v1",
//     "name":    "<harness id>",            // e.g. "bench_serve_saturation"
//     "params":  { scalar, ... },           // farm + load-generator config
//     "tenants": [ { "tenant": "...",       // one row per tenant
//                    "submitted": n, "completed": n, scalar... }, ... ],
//     "totals":  { scalar, ... },           // farm-wide throughput, fairness
//     "metrics": { "counters": [...],       // MetricsSnapshot export
//                  "gauges": [...],
//                  "histograms": [...] }
//   }
//
// "scalar" means finite number, string, or bool, as in run_report — rows
// stay flat and diffable. validate_serve_report() enforces the schema; the
// tools/validate_report CLI dispatches to it on the "schema" field.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace repro::serve {

class ServeReport {
 public:
  static constexpr const char* kSchema = "repro.serve_report/v1";

  explicit ServeReport(std::string name) : name_(std::move(name)) {}

  void set_param(const std::string& key, obs::Json value);
  void set_total(const std::string& key, obs::Json value);
  /// Append one per-tenant row: an object of scalars that must include a
  /// string "tenant" and numbers "submitted" and "completed".
  void add_tenant(obs::Json row);
  void add_metrics(const obs::MetricsSnapshot& snapshot);
  void add_metrics(const obs::MetricsRegistry& registry);

  obs::Json to_json() const;
  std::string to_string(int indent = 2) const;
  /// Serialize to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  std::string name_;
  obs::Json params_ = obs::Json::object();
  obs::Json totals_ = obs::Json::object();
  obs::Json tenants_ = obs::Json::array();
  obs::Json counters_ = obs::Json::array();
  obs::Json gauges_ = obs::Json::array();
  obs::Json histograms_ = obs::Json::array();
};

/// Validate a serialized report against repro.serve_report/v1. Returns true
/// on success; otherwise false with a human-readable reason in *error.
bool validate_serve_report(const std::string& json_text, std::string* error);

}  // namespace repro::serve
