#include "serve/serve_report.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

namespace repro::serve {

using obs::Json;

void ServeReport::set_param(const std::string& key, Json value) {
  params_[key] = std::move(value);
}

void ServeReport::set_total(const std::string& key, Json value) {
  totals_[key] = std::move(value);
}

void ServeReport::add_tenant(Json row) {
  if (!row.is_object()) {
    throw std::invalid_argument("ServeReport tenant rows must be JSON objects");
  }
  tenants_.push_back(std::move(row));
}

void ServeReport::add_metrics(const obs::MetricsSnapshot& snapshot) {
  Json exported = obs::to_json(snapshot);
  for (auto& entry : exported["counters"].as_array()) {
    counters_.push_back(entry);
  }
  for (auto& entry : exported["gauges"].as_array()) {
    gauges_.push_back(entry);
  }
  for (auto& entry : exported["histograms"].as_array()) {
    histograms_.push_back(entry);
  }
}

void ServeReport::add_metrics(const obs::MetricsRegistry& registry) {
  add_metrics(registry.snapshot());
}

Json ServeReport::to_json() const {
  Json out = Json::object();
  out["schema"] = kSchema;
  out["name"] = name_;
  out["params"] = params_;
  out["tenants"] = tenants_;
  out["totals"] = totals_;
  Json metrics = Json::object();
  metrics["counters"] = counters_;
  metrics["gauges"] = gauges_;
  metrics["histograms"] = histograms_;
  out["metrics"] = std::move(metrics);
  return out;
}

std::string ServeReport::to_string(int indent) const {
  return to_json().dump(indent) + "\n";
}

void ServeReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("ServeReport: cannot open '" + path +
                             "' for writing");
  }
  out << to_string();
  if (!out) {
    throw std::runtime_error("ServeReport: write to '" + path + "' failed");
  }
}

namespace {

/// First-failure accumulator, mirroring run_report's validator style.
struct Checker {
  std::string error;

  bool ok() const { return error.empty(); }
  bool fail(const std::string& what) {
    if (error.empty()) error = what;
    return false;
  }

  bool check_scalar(const Json& v, const std::string& where) {
    if (!ok()) return false;
    if (v.is_string() || v.is_bool()) return true;
    if (v.is_number()) {
      if (!std::isfinite(v.as_number())) {
        return fail(where + ": number is not finite");
      }
      return true;
    }
    return fail(where + ": expected a scalar (number, string, or bool)");
  }

  bool check_scalar_object(const Json& v, const std::string& where) {
    if (!ok()) return false;
    if (!v.is_object()) return fail(where + ": expected an object");
    for (const auto& [key, value] : v.as_object()) {
      if (!check_scalar(value, where + "." + key)) return false;
    }
    return true;
  }

  bool check_metric_arrays(const Json& v, const std::string& where) {
    if (!ok()) return false;
    if (!v.is_object()) return fail(where + ": expected an object");
    for (const char* key : {"counters", "gauges", "histograms"}) {
      const Json* arr = v.find(key);
      if (arr == nullptr) return fail(where + ": missing '" + key + "'");
      if (!arr->is_array()) {
        return fail(where + "." + key + ": expected an array");
      }
    }
    return true;
  }
};

}  // namespace

bool validate_serve_report(const std::string& json_text, std::string* error) {
  Json doc;
  std::string parse_error;
  if (!Json::parse(json_text, &doc, &parse_error)) {
    if (error != nullptr) *error = "invalid JSON: " + parse_error;
    return false;
  }
  Checker c;
  [&]() -> bool {
    if (!doc.is_object()) return c.fail("top level: expected an object");
    const Json* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != ServeReport::kSchema) {
      return c.fail(std::string("top level: 'schema' must be \"") +
                    ServeReport::kSchema + "\"");
    }
    const Json* name = doc.find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return c.fail("top level: missing non-empty string 'name'");
    }
    const Json* params = doc.find("params");
    if (params == nullptr || !c.check_scalar_object(*params, "params")) {
      return c.fail("params: missing or invalid");
    }
    const Json* totals = doc.find("totals");
    if (totals == nullptr || !c.check_scalar_object(*totals, "totals")) {
      return c.fail("totals: missing or invalid");
    }
    const Json* tenants = doc.find("tenants");
    if (tenants == nullptr || !tenants->is_array()) {
      return c.fail("tenants: missing or not an array");
    }
    for (std::size_t i = 0; i < tenants->as_array().size(); ++i) {
      const Json& row = tenants->as_array()[i];
      const std::string where = "tenants[" + std::to_string(i) + "]";
      if (!c.check_scalar_object(row, where)) return false;
      const Json* tenant = row.find("tenant");
      if (tenant == nullptr || !tenant->is_string()) {
        return c.fail(where + ": missing string 'tenant'");
      }
      for (const char* key : {"submitted", "completed"}) {
        const Json* v = row.find(key);
        if (v == nullptr || !v->is_number()) {
          return c.fail(where + ": missing number '" + key + "'");
        }
      }
    }
    const Json* metrics = doc.find("metrics");
    if (metrics == nullptr || !c.check_metric_arrays(*metrics, "metrics")) {
      return c.fail("metrics: missing or invalid");
    }
    return true;
  }();
  if (!c.ok() && error != nullptr) *error = c.error;
  return c.ok();
}

}  // namespace repro::serve
