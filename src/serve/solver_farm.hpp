// SolverFarm: one resident rt::Runtime serving a stream of solves.
//
// Lifecycle of a request:
//
//   submit() --admission--> tenant lane in a FairQueue --DRR--> a *wave*
//
// The single dispatcher thread executes waves back-to-back on the resident
// runtime (Runtime::run is reuse-safe; see runtime.hpp). A wave is either
//
//   * a BATCH: several small jobs compiled into one shared TaskGraph, each
//     under its own key_space so task keys never collide, each tagged with
//     its tenant's accounting lane (rt_lane_tasks_executed_total) and a
//     priority bias that maps deadline jobs onto higher scheduler levels; or
//   * a WINDOW: one checkpoint-delimited slice (checkpoint_supersteps CA
//     supersteps) of one large job. The superstep hook records every tile
//     core into the job's fault::CheckpointStore, and — when preemption has
//     been requested — aborts the wave at the next superstep boundary. The
//     farm rolls the job back to its newest complete checkpoint and requeues
//     it; because the Jacobi update is memoryless given the grid, the
//     resumed job's final field is bit-identical to an uninterrupted solve
//     (same argument as fault::run_resilient).
//
// Large jobs (cost >= preempt_cost_threshold) always run alone in windows,
// so preempting one can never destroy a co-scheduled small job's work.
// Fused-wavefront jobs (SolveRequest::fuse_depth > 1) also always dispatch
// alone — their wave's graph is rewritten wholesale by rt::fuse_supersteps
// before running, which must never touch a co-batched tenant's subgraph.
//
// Preemption triggers: an explicit preempt(job_id) call, a deadline job
// arriving from another tenant (preempt_on_deadline_submit), and
// shutdown(false). All of them only set a flag; the job yields at the next
// globally consistent superstep boundary, never mid-superstep.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "runtime/runtime.hpp"
#include "serve/admission.hpp"
#include "serve/fair_queue.hpp"
#include "serve/serve.hpp"

namespace repro::serve {

struct FarmConfig {
  /// Virtual process grid of the resident runtime. Every request is
  /// decomposed over this grid (requests pick tile sizes only).
  int node_rows = 1;
  int node_cols = 1;
  int workers_per_rank = 2;
  rt::SchedPolicy scheduler = rt::SchedPolicy::WorkStealing;
  std::uint64_t sched_seed = 0;
  /// Schedule-fuzzing instrumentation, forwarded to the runtime (tests).
  std::shared_ptr<rt::SchedTestHook> sched_test_hook{};
  bool dedicated_comm_thread = true;
  /// Route every job's halo traffic over persistent channels: the resident
  /// runtime builds each wave's channel via net::persistent_channel_factory
  /// and every compiled subgraph annotates its remote halo flows with route
  /// ids (negotiated once per wave, before the wave's first task runs).
  bool persistent = false;

  AdmissionConfig admission{};

  /// DRR quantum in cost units (point updates) credited per lane visit.
  long long quantum = 1 << 20;
  /// Max small jobs batched into one shared graph.
  int max_batch_jobs = 8;
  /// Jobs at or above this cost run alone, in preemptible checkpoint
  /// windows, instead of joining batches.
  long long preempt_cost_threshold = 1 << 22;
  /// Window length for large jobs, in CA supersteps (window iterations =
  /// checkpoint_supersteps * steps, clamped to the job's remainder).
  int checkpoint_supersteps = 2;
  /// A submit with deadline_s > 0 preempts a running large job of another
  /// tenant (the deadline job still waits for the superstep boundary).
  bool preempt_on_deadline_submit = true;

  /// Registry for the serve_* families; the resident runtime and its
  /// transport scrape rt_* / net_* here too. Null = private registry.
  std::shared_ptr<obs::MetricsRegistry> metrics{};
  /// Live telemetry over the resident runtime: when true (or when
  /// telemetry_dump is non-empty) the farm samples every rank's
  /// flight-recorder counters after each dispatched wave into a
  /// TelemetryCollector under source="serve" — the wave index plays the
  /// superstep role, so the straggler detector's lag unit is waves here.
  bool telemetry = false;
  /// Rewritten atomically after every wave for `repro_top --file=<path>`.
  std::string telemetry_dump;
  obs::DetectorConfig telemetry_detectors{};
  /// Optional caller-owned collector (aggregate across farms / inspect after
  /// shutdown). Null = the farm builds its own; read it via telemetry().
  std::shared_ptr<obs::TelemetryCollector> telemetry_collector{};
  /// Test hook: observes every checkpointed superstep of windowed jobs
  /// (called from worker threads; must be thread-safe). The seeded
  /// preemption tests use it to preempt at exact supersteps.
  std::function<void(std::uint64_t job_id, int superstep)>
      superstep_observer{};
};

/// Aggregates the farm keeps per tenant, for reports and tests.
struct TenantStats {
  std::string tenant;
  int lane = -1;
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t windows = 0;
  std::uint64_t deadline_misses = 0;
  long long goodput_points = 0;  ///< nominal points of completed jobs
  /// Submit-to-completion latencies of completed jobs, seconds (capped at
  /// kMaxLatencySamples to bound soak-test memory; the cap drops newest).
  std::vector<double> latency_s;
};

class SolverFarm {
 public:
  static constexpr std::size_t kMaxLatencySamples = 16384;

  explicit SolverFarm(FarmConfig config);
  ~SolverFarm();  ///< shutdown(false) + join if still running

  SolverFarm(const SolverFarm&) = delete;
  SolverFarm& operator=(const SolverFarm&) = delete;

  struct Submission {
    std::uint64_t job_id = 0;
    RejectReason rejected = RejectReason::None;
    /// Valid iff accepted(); resolves when the job reaches a terminal state.
    std::future<SolveResponse> response;

    bool accepted() const { return rejected == RejectReason::None; }
  };

  /// Admit-or-reject `request`. Never blocks on solver work. Thread-safe.
  Submission submit(SolveRequest request);

  /// Ask job `job_id` to yield at its next superstep boundary. Returns false
  /// if the job is unknown or already finished. Only windowed (large) jobs
  /// checkpoint, so only they can actually yield; the flag is a no-op for
  /// batched jobs.
  bool preempt(std::uint64_t job_id);

  /// Stop admitting. drain=true lets queued jobs finish; drain=false
  /// preempts the running window (checkpointing its progress) and resolves
  /// every unfinished job as Cancelled. Non-blocking — wait on the futures
  /// (or destroy the farm) to observe completion. Idempotent; a later
  /// drain=false upgrade cancels what is still queued.
  void shutdown(bool drain);

  std::vector<TenantStats> tenant_stats() const;
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }
  int nodes() const { return config_.node_rows * config_.node_cols; }
  const FarmConfig& config() const { return config_; }
  /// Null unless FarmConfig::telemetry (or telemetry_dump) was set. Set once
  /// at construction, so reading it is safe from any thread.
  const std::shared_ptr<obs::TelemetryCollector>& telemetry() const {
    return telemetry_;
  }

 private:
  struct Job;
  using JobPtr = std::shared_ptr<Job>;

  void dispatcher_loop();
  void run_batch(std::vector<JobPtr>& wave);
  void run_window(const JobPtr& job);
  void sample_telemetry();
  void fulfill(const JobPtr& job, SolveResponse&& response);
  void cancel(const JobPtr& job);
  RejectReason validate(const SolveRequest& request) const;
  int lane_for_locked(const std::string& tenant);
  std::shared_ptr<obs::Counter> tenant_counter(const std::string& name,
                                               const std::string& tenant,
                                               const std::string& help);

  FarmConfig config_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  AdmissionController admission_;
  std::unique_ptr<rt::Runtime> runtime_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  FairQueue<JobPtr> queue_;
  std::map<std::string, int> lanes_;          // tenant -> dense lane index
  std::map<std::string, TenantStats> stats_;  // tenant -> aggregates
  std::map<std::uint64_t, JobPtr> jobs_;      // in-flight (queued or running)
  std::weak_ptr<Job> running_;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  bool drain_ = true;

  std::shared_ptr<obs::Gauge> queue_depth_;
  std::shared_ptr<obs::Counter> waves_batch_;
  std::shared_ptr<obs::Counter> waves_window_;
  std::shared_ptr<obs::TelemetryCollector> telemetry_;
  // Dispatcher-thread-only telemetry state: the resident runtime re-attaches
  // fresh counters every run (= every wave), so each raw rank_sample() covers
  // one wave; cumulative_ folds them into monotonic counters for the
  // collector. Seeded from a caller-owned collector so sharing one across
  // successive farms keeps counters and the wave odometer continuous.
  std::uint64_t wave_index_ = 0;
  std::vector<obs::TelemetrySnapshot> cumulative_;

  std::thread dispatcher_;
};

}  // namespace repro::serve
