#include "serve/admission.hpp"

#include <stdexcept>

namespace repro::serve {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  if (config.max_queued < 1 || config.max_queued_per_tenant < 1 ||
      config.max_cost_per_tenant < 1 || config.max_tenants < 1) {
    throw std::invalid_argument("AdmissionController: caps must be >= 1");
  }
}

RejectReason AdmissionController::try_admit(const std::string& tenant,
                                            long long cost) {
  if (cost <= 0) return RejectReason::BadRequest;
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return RejectReason::ShuttingDown;
  if (queued_ >= config_.max_queued) return RejectReason::QueueFull;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    if (static_cast<int>(tenants_.size()) >= config_.max_tenants) {
      return RejectReason::TenantLimit;
    }
    it = tenants_.emplace(tenant, Tenant{}).first;
  }
  Tenant& t = it->second;
  if (t.jobs >= config_.max_queued_per_tenant) return RejectReason::TenantQuota;
  if (t.cost + cost > config_.max_cost_per_tenant) {
    // A single job above the tenant cost cap would never fit; still a quota
    // rejection (the caller can resubmit smaller), not a bad request.
    return RejectReason::TenantCost;
  }
  ++t.jobs;
  t.cost += cost;
  ++queued_;
  queued_cost_ += cost;
  return RejectReason::None;
}

void AdmissionController::release(const std::string& tenant, long long cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  Tenant& t = it->second;
  if (t.jobs > 0) --t.jobs;
  t.cost = t.cost > cost ? t.cost - cost : 0;
  if (queued_ > 0) --queued_;
  queued_cost_ = queued_cost_ > cost ? queued_cost_ - cost : 0;
}

void AdmissionController::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
}

bool AdmissionController::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

bool AdmissionController::knows(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.count(tenant) != 0;
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{queued_, queued_cost_, static_cast<int>(tenants_.size())};
}

}  // namespace repro::serve
