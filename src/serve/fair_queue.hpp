// Deficit-round-robin multiplexing across tenant lanes.
//
// Classic DRR (Shreedhar & Varghese): each lane accumulates `quantum` cost
// units of credit per scheduler visit and may dispatch queued items while
// its front item fits the accumulated deficit. With equal quanta, long-run
// throughput converges to an equal share per backlogged lane regardless of
// item sizes — the fairness the serve report's max/min goodput ratio checks.
//
// One serve-specific twist: items at or above `solo_threshold`, or pushed
// with an explicit solo flag, are dispatched ALONE (a wave of exactly one).
// The farm runs a wave as a single runtime graph, and a preempted wave
// aborts the whole graph; keeping large preemptible jobs out of shared waves
// means preemption can never destroy an innocent small job's work. The
// explicit flag covers jobs that must run alone for reasons other than cost
// (fused-wavefront jobs, whose graphs are rewritten wholesale).
//
// Not thread-safe — the owner (SolverFarm) serializes access under its own
// mutex.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

namespace repro::serve {

template <typename T>
class FairQueue {
 public:
  explicit FairQueue(long long quantum)
      : quantum_(quantum > 0 ? quantum : 1) {}

  /// Append to `lane`'s queue (lanes are dense small ints; the vector grows
  /// on first use of a lane index). `solo` forces a one-item wave regardless
  /// of cost.
  void push(int lane, long long cost, T item, bool solo = false) {
    lane_ref(lane).q.push_back(Entry{cost, solo, std::move(item)});
    ++size_;
  }

  /// Prepend — used to resume a preempted job ahead of its lane-mates.
  void push_front(int lane, long long cost, T item, bool solo = false) {
    lane_ref(lane).q.push_front(Entry{cost, solo, std::move(item)});
    ++size_;
  }

  /// Dispatch the next wave: up to `max_items` items in DRR order, except
  /// that an item with cost >= solo_threshold (> 0) or an explicit solo flag
  /// forms a wave by itself. Never returns empty while the queue is
  /// non-empty — the deficit loop cycles until some lane can afford its
  /// front item.
  std::vector<T> pop_wave(std::size_t max_items, long long solo_threshold) {
    std::vector<T> wave;
    if (max_items == 0) return wave;
    while (wave.empty() && size_ > 0) {
      for (std::size_t visited = 0; visited < lanes_.size(); ++visited) {
        Lane& lane = lanes_[cursor_];
        cursor_ = (cursor_ + 1) % lanes_.size();
        if (lane.q.empty()) {
          lane.deficit = 0;  // credit does not accrue while idle
          continue;
        }
        lane.deficit += quantum_;
        while (!lane.q.empty() && wave.size() < max_items) {
          Entry& front = lane.q.front();
          if (front.cost > lane.deficit) break;
          const bool solo =
              front.solo ||
              (solo_threshold > 0 && front.cost >= solo_threshold);
          if (solo && !wave.empty()) break;  // next wave, alone
          lane.deficit -= front.cost;
          wave.push_back(std::move(front.item));
          lane.q.pop_front();
          --size_;
          if (solo) return wave;
        }
        if (wave.size() >= max_items) return wave;
      }
    }
    return wave;
  }

  /// Remove everything, in lane order (shutdown-without-drain cancellation).
  std::vector<T> drain_all() {
    std::vector<T> all;
    all.reserve(size_);
    for (Lane& lane : lanes_) {
      for (Entry& entry : lane.q) all.push_back(std::move(entry.item));
      lane.q.clear();
      lane.deficit = 0;
    }
    size_ = 0;
    return all;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t lanes() const { return lanes_.size(); }

 private:
  struct Entry {
    long long cost = 0;
    bool solo = false;
    T item;
  };
  struct Lane {
    std::deque<Entry> q;
    long long deficit = 0;
  };

  Lane& lane_ref(int lane) {
    const auto index = static_cast<std::size_t>(lane < 0 ? 0 : lane);
    if (index >= lanes_.size()) lanes_.resize(index + 1);
    return lanes_[index];
  }

  std::vector<Lane> lanes_;
  std::size_t cursor_ = 0;
  long long quantum_;
  std::size_t size_ = 0;
};

}  // namespace repro::serve
