#include "fault/reliable_channel.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::fault {

namespace {

// Envelope prepended to every header:
//   [kMagic, kind, seq, cumulative_ack, original_header_len, <orig header>]
constexpr std::uint64_t kMagic = 0x52454C4348414E00ULL;  // "RELCHAN"
constexpr std::uint64_t kKindData = 0;
constexpr std::uint64_t kKindAck = 1;
constexpr std::size_t kEnvelopeWords = 5;

net::Message unwrap(net::Message&& wire) {
  net::Message msg;
  msg.src = wire.src;
  msg.dst = wire.dst;
  msg.tag = wire.tag;
  msg.trace = wire.trace;  // the delivered copy keeps its Send identity
  const auto orig_len = static_cast<std::size_t>(wire.header[4]);
  msg.header.assign(wire.header.begin() + kEnvelopeWords,
                    wire.header.begin() +
                        static_cast<std::ptrdiff_t>(kEnvelopeWords + orig_len));
  msg.payload = std::move(wire.payload);
  // Shared-view payloads (persistent channels) ride the envelope untouched.
  msg.owner = std::move(wire.owner);
  msg.view_offset = wire.view_offset;
  msg.view_len = wire.view_len;
  return msg;
}

}  // namespace

ReliableChannel::ReliableChannel(std::shared_ptr<net::Channel> inner,
                                 ReliableConfig config)
    : inner_(std::move(inner)),
      config_(config),
      metrics_(config.metrics ? config.metrics
                              : std::make_shared<obs::MetricsRegistry>()),
      rng_(config.seed) {
  if (!inner_) throw std::invalid_argument("ReliableChannel: null inner");
  inner_lossless_ = inner_->lossless();
  if (config_.timeout_s <= 0.0 || config_.backoff < 1.0 ||
      config_.max_retries < 1 || config_.window < 1) {
    throw std::invalid_argument("ReliableChannel: bad config");
  }
  ready_.resize(static_cast<std::size_t>(inner_->nranks()));

  m_data_sent_ = std::make_shared<obs::Counter>();
  m_retransmits_ = std::make_shared<obs::Counter>();
  m_acks_sent_ = std::make_shared<obs::Counter>();
  m_dup_dropped_ = std::make_shared<obs::Counter>();
  m_out_of_order_ = std::make_shared<obs::Counter>();
  m_window_stalls_ = std::make_shared<obs::Counter>();
  m_backoff_wait_ = std::make_shared<obs::Gauge>();
  metrics_->attach("fault_data_sent_total", {}, m_data_sent_,
                   "First transmissions through the reliable layer");
  metrics_->attach("fault_retransmits_total", {}, m_retransmits_,
                   "Timeout-driven resends");
  metrics_->attach("fault_acks_sent_total", {}, m_acks_sent_,
                   "Dedicated ACK messages");
  metrics_->attach("fault_dup_dropped_total", {}, m_dup_dropped_,
                   "Duplicate data messages suppressed");
  metrics_->attach("fault_out_of_order_total", {}, m_out_of_order_,
                   "Data messages buffered past a sequence gap");
  metrics_->attach("fault_window_stalls_total", {}, m_window_stalls_,
                   "send() calls that blocked on a full in-flight window");
  metrics_->attach("fault_backoff_wait_seconds_total", {}, m_backoff_wait_,
                   "Cumulative scheduled retry wait");

  retx_ = std::thread([this] { retransmit_loop(); });
}

ReliableChannel::~ReliableChannel() { close(); }

void ReliableChannel::throw_failed() const {
  std::string what;
  {
    std::lock_guard lock(mutex_);
    what = error_;
  }
  throw net::ChannelError("ReliableChannel: " +
                          (what.empty() ? std::string("failed") : what));
}

double ReliableChannel::jittered(double interval_s) {
  return interval_s * (1.0 + config_.jitter * rng_.uniform(-1.0, 1.0));
}

void ReliableChannel::forward(net::Message msg) {
  try {
    inner_->send(std::move(msg));
  } catch (const std::exception&) {
    if (!inner_->closed()) throw;
  }
}

void ReliableChannel::send(net::Message msg) {
  if (failed_.load()) throw_failed();
  if (closed_.load()) {
    throw std::runtime_error("ReliableChannel: send after close");
  }
  const int src = msg.src;
  const int dst = msg.dst;
  if (src < 0 || src >= nranks() || dst < 0 || dst >= nranks()) {
    throw std::out_of_range("ReliableChannel: bad rank");
  }

  std::unique_lock lock(mutex_);
  SendState& st = send_states_[{src, dst}];
  if (st.window.size() >= config_.window && !stopping_ && !failed_.load()) {
    ++stats_.window_stalls;
    m_window_stalls_->inc();
  }
  window_cv_.wait(lock, [&] {
    return st.window.size() < config_.window || stopping_ || failed_.load();
  });
  if (failed_.load()) {
    lock.unlock();
    throw_failed();
  }
  if (stopping_) throw std::runtime_error("ReliableChannel: send after close");

  const std::uint64_t seq = st.next_seq++;
  // Piggyback the cumulative ack for the reverse direction.
  const std::uint64_t rev_ack = recv_states_[{dst, src}].expected;

  net::Message wire;
  wire.src = src;
  wire.dst = dst;
  wire.tag = msg.tag;
  wire.trace = msg.trace;
  wire.header.reserve(kEnvelopeWords + msg.header.size());
  wire.header = {kMagic, kKindData, seq, rev_ack, msg.header.size()};
  wire.header.insert(wire.header.end(), msg.header.begin(), msg.header.end());
  wire.payload = std::move(msg.payload);
  wire.owner = std::move(msg.owner);
  wire.view_offset = msg.view_offset;
  wire.view_len = msg.view_len;

  InFlight entry;
  entry.seq = seq;
  if (inner_lossless_) {
    // Envelope-only retention: over a lossless FIFO inner stack, any
    // retransmit is necessarily a duplicate of an already-delivered message
    // and is dropped by sequence number before its payload is examined — so
    // the window does not need the payload, and the clean path stops paying
    // a defensive deep copy per message.
    entry.wire.src = wire.src;
    entry.wire.dst = wire.dst;
    entry.wire.tag = wire.tag;
    entry.wire.header = wire.header;
    entry.wire.trace = wire.trace;
  } else {
    // Retained copy for retransmission. Shared-view payloads (persistent
    // channels) make this a refcount bump: retransmits re-send straight
    // from the registered buffer without re-copying the bulk data.
    entry.wire = wire;
    if (!wire.shared_payload()) {
      stats_.retained_payload_doubles += wire.payload.size();
    }
  }
  entry.interval_s = jittered(config_.timeout_s);
  entry.next_retry =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(entry.interval_s));
  st.window.push_back(std::move(entry));
  ++stats_.data_sent;
  m_data_sent_->inc();

  // Send while holding the lock so the inner channel sees sequence numbers
  // in assignment order (per-channel FIFO of the clean path is preserved).
  forward(std::move(wire));
  retx_cv_.notify_one();
}

void ReliableChannel::apply_ack(int src, int dst, std::uint64_t ack) {
  auto it = send_states_.find({src, dst});
  if (it == send_states_.end()) return;
  auto& window = it->second.window;
  bool advanced = false;
  while (!window.empty() && window.front().seq < ack) {
    window.pop_front();
    advanced = true;
  }
  if (advanced) window_cv_.notify_all();
}

void ReliableChannel::send_ack(int from, int to) {
  net::Message ack;
  ack.src = from;
  ack.dst = to;
  ack.header = {kMagic, kKindAck, 0, recv_states_[{to, from}].expected, 0};
  ++stats_.acks_sent;
  m_acks_sent_->inc();
  forward(std::move(ack));
}

void ReliableChannel::process(net::Message wire, int rank) {
  if (wire.header.size() < kEnvelopeWords || wire.header[0] != kMagic) {
    throw std::runtime_error(
        "ReliableChannel: message without envelope (mis-stacked channel?)");
  }
  const std::uint64_t kind = wire.header[1];
  const std::uint64_t seq = wire.header[2];
  const std::uint64_t ack = wire.header[3];
  const int src = wire.src;

  // Both data and acks carry a cumulative ack for the reverse direction.
  apply_ack(rank, src, ack);
  if (kind == kKindAck) return;
  if (kind != kKindData) {
    throw std::runtime_error("ReliableChannel: unknown envelope kind");
  }
  if (wire.header.size() !=
      kEnvelopeWords + static_cast<std::size_t>(wire.header[4])) {
    throw std::runtime_error("ReliableChannel: malformed envelope");
  }

  RecvState& rs = recv_states_[{src, rank}];
  if (seq < rs.expected) {
    ++stats_.dup_dropped;
    m_dup_dropped_->inc();
    send_ack(rank, src);  // re-ack: the original ack may have been lost
    return;
  }
  if (seq == rs.expected) {
    ready_[static_cast<std::size_t>(rank)].push_back(unwrap(std::move(wire)));
    ++rs.expected;
    // Drain any buffered successors that are now in order.
    auto it = rs.buffered.begin();
    while (it != rs.buffered.end() && it->first == rs.expected) {
      ready_[static_cast<std::size_t>(rank)].push_back(std::move(it->second));
      it = rs.buffered.erase(it);
      ++rs.expected;
    }
    send_ack(rank, src);
    return;
  }
  // Out of order: park it past the gap (duplicates of parked data dropped).
  if (rs.buffered.emplace(seq, unwrap(std::move(wire))).second) {
    ++stats_.out_of_order;
    m_out_of_order_->inc();
  } else {
    ++stats_.dup_dropped;
    m_dup_dropped_->inc();
  }
  send_ack(rank, src);
}

std::optional<net::Message> ReliableChannel::recv(int rank) {
  if (rank < 0 || rank >= nranks()) {
    throw std::out_of_range("ReliableChannel: bad rank");
  }
  while (true) {
    {
      std::lock_guard lock(mutex_);
      auto& queue = ready_[static_cast<std::size_t>(rank)];
      if (!queue.empty()) {
        net::Message msg = std::move(queue.front());
        queue.pop_front();
        return msg;
      }
    }
    if (failed_.load()) throw_failed();
    auto wire = inner_->recv(rank);  // blocks; woken by inner close
    if (!wire) {
      std::unique_lock lock(mutex_);
      auto& queue = ready_[static_cast<std::size_t>(rank)];
      if (!queue.empty()) {
        net::Message msg = std::move(queue.front());
        queue.pop_front();
        return msg;
      }
      lock.unlock();
      if (failed_.load()) throw_failed();
      return std::nullopt;
    }
    std::lock_guard lock(mutex_);
    process(std::move(*wire), rank);
  }
}

std::optional<net::Message> ReliableChannel::try_recv(int rank) {
  if (rank < 0 || rank >= nranks()) {
    throw std::out_of_range("ReliableChannel: bad rank");
  }
  while (true) {
    {
      std::lock_guard lock(mutex_);
      auto& queue = ready_[static_cast<std::size_t>(rank)];
      if (!queue.empty()) {
        net::Message msg = std::move(queue.front());
        queue.pop_front();
        return msg;
      }
    }
    if (failed_.load()) throw_failed();
    auto wire = inner_->try_recv(rank);
    if (!wire) return std::nullopt;
    std::lock_guard lock(mutex_);
    process(std::move(*wire), rank);
  }
}

std::size_t ReliableChannel::pending(int rank) const {
  std::size_t ready;
  {
    std::lock_guard lock(mutex_);
    ready = ready_[static_cast<std::size_t>(rank)].size();
  }
  return ready + inner_->pending(rank);
}

void ReliableChannel::fail_locked(const std::string& what) {
  if (error_.empty()) error_ = what;
  failed_.store(true);
}

void ReliableChannel::retransmit_loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    // Earliest scheduled retry across all channels.
    Clock::time_point earliest = Clock::time_point::max();
    for (const auto& [key, st] : send_states_) {
      for (const auto& entry : st.window) {
        earliest = std::min(earliest, entry.next_retry);
      }
    }
    const auto now = Clock::now();
    if (earliest == Clock::time_point::max()) {
      retx_cv_.wait(lock);
      continue;
    }
    if (now < earliest) {
      retx_cv_.wait_until(lock, earliest);
      continue;
    }
    for (auto& [key, st] : send_states_) {
      for (auto& entry : st.window) {
        if (entry.next_retry > now) continue;
        if (entry.attempts > config_.max_retries) {
          fail_locked("gave up on seq " + std::to_string(entry.seq) +
                      " from rank " + std::to_string(key.first) + " to rank " +
                      std::to_string(key.second) + " after " +
                      std::to_string(entry.attempts) + " attempts");
          window_cv_.notify_all();
          lock.unlock();
          inner_->close();  // wakes receivers so they observe failed()
          return;
        }
        ++entry.attempts;
        ++stats_.retransmits;
        m_retransmits_->inc();
        // The retained wire copy carries the running attempt count, so
        // whichever transmission reaches the receiver reports how many
        // resends it took (1 + retransmits observed on the delivered copy).
        entry.wire.trace.attempt += 1;
        entry.interval_s =
            std::min(entry.interval_s * config_.backoff, config_.max_backoff_s);
        const double wait = jittered(entry.interval_s);
        stats_.backoff_wait_s += wait;
        m_backoff_wait_->add(wait);
        entry.next_retry =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(wait));
        forward(entry.wire);  // copy stays in the window until acked
      }
    }
  }
}

void ReliableChannel::close() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      inner_->close();
      closed_.store(true);
      return;
    }
    stopping_ = true;
    closed_.store(true);
  }
  retx_cv_.notify_all();
  window_cv_.notify_all();
  if (retx_.joinable()) retx_.join();
  inner_->close();
}

ReliableStats ReliableChannel::reliable_stats() const {
  std::lock_guard lock(mutex_);
  ReliableStats stats = stats_;
  stats.failed = failed_.load();
  return stats;
}

}  // namespace repro::fault
