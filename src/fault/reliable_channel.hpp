// ReliableChannel: exactly-once FIFO delivery over a lossy net::Channel.
//
// The decorator restores the delivery contract the runtime assumes (per-
// (src,dst) FIFO, no loss, no duplicates) on top of a channel that drops,
// duplicates, delays and reorders — the classic reliable-datagram recipe:
//
//   * every data message carries a per-(src,dst) sequence number inside an
//     envelope prepended to the header;
//   * the receiver delivers in-order messages, buffers out-of-order ones,
//     suppresses duplicates, and acknowledges with a cumulative ack (the
//     next expected sequence number) — acks ride both on dedicated ACK
//     messages and piggybacked on reverse-direction data;
//   * the sender keeps unacked messages in a bounded in-flight window
//     (send() blocks when the window is full) and a retransmit thread
//     resends timed-out entries with exponential backoff + jitter;
//   * after max_retries attempts the channel conclusively fails: pending and
//     future operations throw net::ChannelError, which aborts the runtime's
//     run so a recovery driver can roll back to a checkpoint.
//
// Stacking: ReliableChannel( FaultInjector( Transport ) ). The wire traffic
// visible via stats() is the inner channel's (envelopes, retransmissions and
// acks included) — honest accounting of what reliability costs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "net/channel.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace repro::fault {

struct ReliableConfig {
  double timeout_s = 0.005;    ///< initial retransmit timeout
  double backoff = 2.0;        ///< timeout multiplier per retry
  double max_backoff_s = 0.25; ///< cap on the per-retry interval
  double jitter = 0.2;         ///< +-fraction of random spread per interval
  int max_retries = 12;        ///< attempts before the channel fails
  std::size_t window = 256;    ///< max unacked messages per (src,dst)
  std::uint64_t seed = 0x5eed; ///< jitter RNG seed
  /// Registry the fault_* counter families register into (null = private
  /// registry, reachable via ReliableChannel::metrics()).
  std::shared_ptr<obs::MetricsRegistry> metrics{};
};

/// Reliability counters ("TrafficStats for the retry machinery"). Kept as a
/// mutex-guarded struct so the API works with obs compiled out; every field
/// is mirrored into fault_* obs counters for scraping.
struct ReliableStats {
  std::uint64_t data_sent = 0;      ///< first transmissions
  std::uint64_t retransmits = 0;    ///< timeout-driven resends
  std::uint64_t acks_sent = 0;      ///< dedicated ACK messages
  std::uint64_t dup_dropped = 0;    ///< duplicate data suppressed
  std::uint64_t out_of_order = 0;   ///< data buffered past a gap
  std::uint64_t window_stalls = 0;  ///< send() blocked on a full window
  double backoff_wait_s = 0.0;      ///< cumulative scheduled retry wait
  /// Payload doubles deep-copied into retransmit windows. Stays 0 over a
  /// lossless inner stack (envelope-only retention — the defensive copy is
  /// skipped) and for shared-view payloads (retained by refcount).
  std::uint64_t retained_payload_doubles = 0;
  bool failed = false;              ///< retries exhausted somewhere
};

class ReliableChannel final : public net::Channel {
 public:
  explicit ReliableChannel(std::shared_ptr<net::Channel> inner,
                           ReliableConfig config = {});
  ~ReliableChannel() override;

  int nranks() const override { return inner_->nranks(); }
  void send(net::Message msg) override;
  std::optional<net::Message> recv(int rank) override;
  std::optional<net::Message> try_recv(int rank) override;
  std::size_t pending(int rank) const override;
  void close() override;
  bool closed() const override { return closed_.load(); }
  /// Wire-level traffic (envelopes + retransmissions + acks).
  net::TrafficStats stats() const override { return inner_->stats(); }
  /// The whole point of this decorator: exactly-once FIFO delivery (or a
  /// conclusive ChannelError), regardless of the inner stack's losses.
  bool lossless() const override { return true; }

  ReliableStats reliable_stats() const;
  bool failed() const { return failed_.load(); }
  const std::shared_ptr<net::Channel>& inner() const { return inner_; }
  /// Registry holding this channel's fault_* families. Never null.
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct InFlight {
    std::uint64_t seq = 0;
    net::Message wire;  ///< enveloped copy, ready to resend
    Clock::time_point next_retry;
    double interval_s = 0.0;
    int attempts = 1;
  };
  struct SendState {
    std::uint64_t next_seq = 0;
    std::deque<InFlight> window;  ///< unacked, ascending seq
  };
  struct RecvState {
    std::uint64_t expected = 0;  ///< next in-order seq == cumulative ack
    std::map<std::uint64_t, net::Message> buffered;  ///< out-of-order data
  };

  void process(net::Message wire, int rank);  // mutex_ held
  void apply_ack(int src, int dst, std::uint64_t ack);  // mutex_ held
  void send_ack(int from, int to);  // mutex_ held
  void forward(net::Message msg);   // shutdown-tolerant inner send
  void retransmit_loop();
  void fail_locked(const std::string& what);  // mutex_ held
  double jittered(double interval_s);  // mutex_ held (rng)
  [[noreturn]] void throw_failed() const;

  std::shared_ptr<net::Channel> inner_;
  ReliableConfig config_;
  /// Cached inner_->lossless(): gates envelope-only window retention.
  bool inner_lossless_ = false;
  std::shared_ptr<obs::MetricsRegistry> metrics_;

  // obs mirrors of ReliableStats (no-op objects when obs is compiled out).
  std::shared_ptr<obs::Counter> m_data_sent_;
  std::shared_ptr<obs::Counter> m_retransmits_;
  std::shared_ptr<obs::Counter> m_acks_sent_;
  std::shared_ptr<obs::Counter> m_dup_dropped_;
  std::shared_ptr<obs::Counter> m_out_of_order_;
  std::shared_ptr<obs::Counter> m_window_stalls_;
  std::shared_ptr<obs::Gauge> m_backoff_wait_;

  mutable std::mutex mutex_;
  std::condition_variable window_cv_;
  std::condition_variable retx_cv_;
  std::map<std::pair<int, int>, SendState> send_states_;
  std::map<std::pair<int, int>, RecvState> recv_states_;
  std::vector<std::deque<net::Message>> ready_;  ///< per-rank deliverable
  ReliableStats stats_;
  Rng rng_;
  std::string error_;
  bool stopping_ = false;

  std::atomic<bool> closed_{false};
  std::atomic<bool> failed_{false};

  std::thread retx_;
};

}  // namespace repro::fault
