#include "fault/checkpoint.hpp"

namespace repro::fault {

void CheckpointStore::store(int superstep, int ti, int tj,
                            const std::vector<double>& core) {
  std::lock_guard lock(mutex_);
  snapshots_[superstep][{ti, tj}] = core;
  ++stored_;
}

std::optional<std::vector<double>> CheckpointStore::find(int superstep, int ti,
                                                         int tj) const {
  std::lock_guard lock(mutex_);
  const auto step = snapshots_.find(superstep);
  if (step == snapshots_.end()) return std::nullopt;
  const auto tile = step->second.find({ti, tj});
  if (tile == step->second.end()) return std::nullopt;
  return tile->second;
}

int CheckpointStore::last_complete_superstep(std::size_t expected_tiles) const {
  std::lock_guard lock(mutex_);
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (it->second.size() >= expected_tiles) return it->first;
  }
  return -1;
}

std::map<std::pair<int, int>, std::vector<double>> CheckpointStore::tiles(
    int superstep) const {
  std::lock_guard lock(mutex_);
  const auto step = snapshots_.find(superstep);
  if (step == snapshots_.end()) return {};
  return step->second;
}

void CheckpointStore::trim_below(int superstep) {
  std::lock_guard lock(mutex_);
  snapshots_.erase(snapshots_.begin(), snapshots_.lower_bound(superstep));
}

void CheckpointStore::clear() {
  std::lock_guard lock(mutex_);
  snapshots_.clear();
}

CheckpointStore::Stats CheckpointStore::stats() const {
  std::lock_guard lock(mutex_);
  Stats stats;
  stats.stored = stored_;
  stats.supersteps = static_cast<int>(snapshots_.size());
  for (const auto& [step, tiles] : snapshots_) {
    for (const auto& [key, core] : tiles) {
      stats.bytes += core.size() * sizeof(double);
    }
  }
  return stats;
}

}  // namespace repro::fault
