// CheckpointStore: per-tile snapshots taken at CA superstep boundaries.
//
// The CA stencil only has a globally consistent state at superstep starts:
// every tile holds the field at iteration k where k % s == 0, and no halo is
// in flight. Those are exactly the points where a checkpoint is cheap and
// sufficient — the Jacobi update is memoryless given the grid, so restarting
// from the snapshot of superstep k is bit-identical to having never failed.
//
// The store keeps, per superstep, a map from tile coordinates to the tile's
// core values (h x w doubles, row-major). A superstep is "complete" once all
// expected tiles have reported; recovery rolls back to the newest complete
// superstep. trim_below() bounds memory to the retention window.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace repro::fault {

class CheckpointStore {
 public:
  struct Stats {
    std::uint64_t stored = 0;  ///< tile snapshots written (incl. overwrites)
    std::uint64_t bytes = 0;   ///< payload bytes currently retained
    int supersteps = 0;        ///< distinct supersteps currently retained
  };

  /// Record tile (ti,tj)'s core at the start of iteration `superstep`.
  /// Re-storing the same tile overwrites (idempotent on re-execution).
  void store(int superstep, int ti, int tj, const std::vector<double>& core);

  /// The snapshot of one tile at one superstep, if present.
  std::optional<std::vector<double>> find(int superstep, int ti, int tj) const;

  /// Newest superstep with at least `expected_tiles` tiles recorded, or -1.
  int last_complete_superstep(std::size_t expected_tiles) const;

  /// All tiles recorded for `superstep` (empty if none).
  std::map<std::pair<int, int>, std::vector<double>> tiles(int superstep) const;

  /// Drop snapshots older than `superstep` (retention window enforcement).
  void trim_below(int superstep);

  void clear();
  Stats stats() const;

 private:
  using TileMapSnapshot = std::map<std::pair<int, int>, std::vector<double>>;

  mutable std::mutex mutex_;
  std::map<int, TileMapSnapshot> snapshots_;
  std::uint64_t stored_ = 0;
};

}  // namespace repro::fault
