#include "fault/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::fault {

namespace {

std::uint64_t channel_seed(std::uint64_t seed, int src, int dst) {
  SplitMix64 sm(seed);
  sm.state ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
               << 32) |
              static_cast<std::uint32_t>(dst);
  return sm.next();
}

}  // namespace

FaultInjector::FaultInjector(std::shared_ptr<net::Channel> inner,
                             FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  if (!inner_) throw std::invalid_argument("FaultInjector: null inner");
  const auto n = static_cast<std::size_t>(inner_->nranks());
  sends_per_rank_.assign(n, 0);
  stall_until_.assign(n, Clock::time_point::min());
  next_stall_.assign(n, 0);
  // Stalls are matched in after_sends order per rank; sort once.
  std::sort(plan_.stalls.begin(), plan_.stalls.end(),
            [](const StallEvent& a, const StallEvent& b) {
              return a.after_sends < b.after_sends;
            });
  pump_ = std::thread([this] { pump_loop(); });
}

FaultInjector::~FaultInjector() { close(); }

FaultInjector::ChannelState& FaultInjector::channel(int src, int dst) {
  const auto key = std::make_pair(src, dst);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    it = channels_.emplace(key, ChannelState(channel_seed(plan_.seed, src, dst)))
             .first;
  }
  return it->second;
}

void FaultInjector::forward(net::Message msg) {
  try {
    inner_->send(std::move(msg));
  } catch (const std::exception&) {
    if (!inner_->closed()) throw;
  }
}

void FaultInjector::park(net::Message msg, double seconds) {
  parked_.emplace(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(seconds)),
                  std::move(msg));
  pump_cv_.notify_one();
}

void FaultInjector::send(net::Message msg) {
  if (inner_->closed()) {
    throw std::runtime_error("FaultInjector: send after close");
  }
  const int src = msg.src;
  const int dst = msg.dst;
  if (src < 0 || src >= nranks() || dst < 0 || dst >= nranks()) {
    throw std::out_of_range("FaultInjector: bad rank");
  }

  std::optional<net::Message> released;  // held message to flush afterwards
  {
    std::lock_guard lock(mutex_);
    ++total_sends_;
    auto& sent = sends_per_rank_[static_cast<std::size_t>(src)];
    ++sent;

    if (total_sends_ > plan_.blackout_after) {
      ++stats_.dropped;
      return;
    }

    // Scripted stalls: trigger every event whose send-count threshold this
    // rank has crossed, then hold the message until the stall window ends.
    auto& cursor = next_stall_[static_cast<std::size_t>(src)];
    const auto now = Clock::now();
    while (cursor < plan_.stalls.size()) {
      const StallEvent& event = plan_.stalls[cursor];
      if (event.rank != src) {
        ++cursor;
        continue;
      }
      if (sent < event.after_sends) break;
      const auto until =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(event.duration_s));
      auto& deadline = stall_until_[static_cast<std::size_t>(src)];
      deadline = std::max(deadline, until);
      ++cursor;
    }
    const auto stall_deadline = stall_until_[static_cast<std::size_t>(src)];
    if (now < stall_deadline) {
      ++stats_.stalled;
      parked_.emplace(stall_deadline, std::move(msg));
      pump_cv_.notify_one();
      return;
    }

    ChannelState& ch = channel(src, dst);
    const ChannelFaultSpec& spec = plan_.spec(src, dst);

    if (ch.rng.next_double() < spec.drop) {
      ++stats_.dropped;
      return;  // the held message (if any) stays held for the next send
    }
    if (ch.rng.next_double() < spec.delay) {
      ++stats_.delayed;
      park(std::move(msg), spec.delay_s * ch.rng.uniform(0.5, 1.5));
      return;
    }
    if (ch.rng.next_double() < spec.reorder && !ch.held) {
      ++stats_.reordered;
      ch.held = std::move(msg);
      return;
    }
    const bool dup = ch.rng.next_double() < spec.duplicate;
    if (dup) ++stats_.duplicated;
    ++stats_.forwarded;
    if (ch.held) {
      released = std::move(ch.held);
      ch.held.reset();
    }
    // Forward outside the fault bookkeeping but inside the per-injector
    // critical section so the (msg, released) pair hits the wire in swap
    // order atomically with respect to other senders on this channel.
    forward(msg);          // copy: `msg` may be forwarded again below
    if (dup) forward(msg);
  }
  if (released) forward(std::move(*released));
}

void FaultInjector::pump_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (stopping_) return;
    if (parked_.empty()) {
      pump_cv_.wait(lock);
      continue;
    }
    const auto release = parked_.begin()->first;
    const auto now = Clock::now();
    if (now < release) {
      pump_cv_.wait_until(lock, release);
      continue;
    }
    net::Message msg = std::move(parked_.begin()->second);
    parked_.erase(parked_.begin());
    lock.unlock();
    forward(std::move(msg));
    lock.lock();
  }
}

void FaultInjector::close() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      inner_->close();
      return;
    }
    stopping_ = true;
    // Parked and held messages are moot at shutdown; count them as dropped so
    // the books balance (forwarded + dropped + ... = sends observed).
    stats_.dropped += parked_.size();
    parked_.clear();
    for (auto& [key, ch] : channels_) {
      if (ch.held) {
        ++stats_.dropped;
        ch.held.reset();
      }
    }
  }
  pump_cv_.notify_all();
  if (pump_.joinable()) pump_.join();
  inner_->close();
}

FaultStats FaultInjector::fault_stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace repro::fault
