// ResilientRunner: checkpointed superstep recovery for the CA stencil.
//
// run_resilient() executes the distributed solve one *window* of supersteps
// at a time. Each window is an ordinary run_distributed() call whose initial
// condition is the snapshot grid left by the previous window and whose
// superstep hook feeds a CheckpointStore. When a window aborts (the reliable
// channel exhausted its retries, a rank blacked out, ...), the runner rolls
// back: if the store holds a complete superstep newer than the window start
// it resumes mid-window from there, otherwise it replays the whole window —
// with a fresh channel stack either way.
//
// Because the Jacobi update is memoryless given the grid, the recovered
// trajectory is bit-identical to a fault-free run: chaining windows (and
// re-running them after rollback) produces exactly the same doubles as one
// long run, which tests assert against solve_serial().
#pragma once

#include <cstdint>

#include "fault/checkpoint.hpp"
#include "net/channel.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/problem.hpp"

namespace repro::fault {

struct ResilientConfig {
  stencil::DistConfig dist;  ///< decomposition, CA steps, workers, ...
  /// Built fresh for every attempt; wrap Transport in FaultInjector /
  /// ReliableChannel here. Empty = plain Transport (nothing to recover from,
  /// but the windowed execution still works).
  net::ChannelFactory channel_factory{};
  int checkpoint_supersteps = 1;  ///< window length, in supersteps
  int max_attempts = 5;           ///< consecutive failures before giving up
  int retain_supersteps = 2;      ///< checkpoint retention window
};

struct ResilientResult {
  stencil::Grid2D grid;           ///< final field, bit-identical to fault-free
  int windows = 0;                ///< successful window executions
  int attempts = 0;               ///< total run_distributed() calls
  int rollbacks = 0;              ///< failed windows rolled back
  int resumed_mid_window = 0;     ///< rollbacks that reused a mid-window ckpt
  std::uint64_t messages = 0;     ///< wire messages across all attempts
  std::uint64_t bytes = 0;        ///< wire bytes across all attempts
  long long computed_points = 0;  ///< stencil updates incl. replayed work
  CheckpointStore::Stats checkpoints{};
};

/// Run the CA stencil to completion despite channel failures. Throws the last
/// window's error once `max_attempts` consecutive attempts fail.
ResilientResult run_resilient(const stencil::Problem& problem,
                              const ResilientConfig& config);

}  // namespace repro::fault
