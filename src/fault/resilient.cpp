#include "fault/resilient.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "stencil/tile_map.hpp"

namespace repro::fault {

namespace {

using stencil::Grid2D;
using stencil::Problem;
using stencil::TileMap;

/// Deep-copy a grid (Grid2D is deliberately move-only; recovery is the one
/// place that legitimately needs value snapshots).
std::shared_ptr<Grid2D> copy_grid(const Grid2D& src, const Problem& problem) {
  auto dst = std::make_shared<Grid2D>(src.rows(), src.cols());
  dst->fill([&src](long i, long j) { return src.at(static_cast<int>(i),
                                                   static_cast<int>(j)); },
            problem.boundary);
  return dst;
}

}  // namespace

ResilientResult run_resilient(const Problem& problem,
                              const ResilientConfig& config) {
  if (config.checkpoint_supersteps < 1 || config.max_attempts < 1 ||
      config.retain_supersteps < 1) {
    throw std::invalid_argument("run_resilient: bad config");
  }
  const int steps = std::max(1, config.dist.steps);
  const int window_iters = config.checkpoint_supersteps * steps;

  const TileMap map(problem.rows, problem.cols, config.dist.decomp.mb,
                    config.dist.decomp.nb, config.dist.decomp.node_rows,
                    config.dist.decomp.node_cols);
  const auto total_tiles =
      static_cast<std::size_t>(map.tiles_r()) * map.tiles_c();

  CheckpointStore store;
  ResilientResult result{Grid2D(problem.rows, problem.cols)};

  // The consistent state at iteration `done`: initially the problem's own
  // initial condition.
  auto snapshot = std::make_shared<Grid2D>(problem.rows, problem.cols);
  snapshot->fill(problem.initial, problem.boundary);
  int done = 0;
  int consecutive_failures = 0;

  while (done < problem.iterations) {
    const int iters = std::min(window_iters, problem.iterations - done);
    const int base = done;

    Problem sub = problem;
    sub.iterations = iters;
    sub.initial = [snapshot](long i, long j) {
      return snapshot->at(static_cast<int>(i), static_cast<int>(j));
    };

    stencil::DistConfig dist = config.dist;
    dist.channel_factory = config.channel_factory;
    dist.superstep_hook = [&store, base](int k, int ti, int tj,
                                         const std::vector<double>& core) {
      store.store(base + k, ti, tj, core);
    };

    ++result.attempts;
    try {
      stencil::DistResult run = stencil::run_distributed(sub, dist);
      result.messages += run.stats.messages;
      result.bytes += run.stats.bytes;
      result.computed_points += run.computed_points;
      ++result.windows;
      consecutive_failures = 0;
      done += iters;
      snapshot = copy_grid(run.grid, problem);
      store.trim_below(done - config.retain_supersteps * steps);
      continue;
    } catch (const std::runtime_error&) {
      ++consecutive_failures;
      ++result.rollbacks;
      if (consecutive_failures >= config.max_attempts) throw;
    }

    // Roll back. A complete superstep newer than the window start lets us
    // resume mid-window instead of replaying from `base`.
    const int resume = store.last_complete_superstep(total_tiles);
    if (resume > done) {
      auto recovered = std::make_shared<Grid2D>(problem.rows, problem.cols);
      recovered->fill([](long, long) { return 0.0; }, problem.boundary);
      for (const auto& [coord, core] : store.tiles(resume)) {
        const auto [ti, tj] = coord;
        const int h = map.tile_h(ti);
        const int w = map.tile_w(tj);
        for (int i = 0; i < h; ++i) {
          for (int j = 0; j < w; ++j) {
            recovered->at(map.row0(ti) + i, map.col0(tj) + j) =
                core[static_cast<std::size_t>(i) * w + j];
          }
        }
      }
      snapshot = std::move(recovered);
      done = resume;
      ++result.resumed_mid_window;
    }
    // else: replay the window from the last snapshot (nothing to change).
  }

  result.grid.fill([&snapshot](long i, long j) {
    return snapshot->at(static_cast<int>(i), static_cast<int>(j));
  }, problem.boundary);
  result.checkpoints = store.stats();
  return result;
}

}  // namespace repro::fault
