// FaultInjector: a net::Channel decorator that perturbs traffic according to
// a deterministic, seeded fault plan.
//
// Real interconnects at the paper's 64-node scale drop, duplicate, delay and
// reorder packets; the in-memory Transport never does. This decorator sits
// between a reliability layer (ReliableChannel) and the Transport and injects
// exactly those faults at send() time:
//
//   * drop      — the message silently vanishes;
//   * duplicate — the message is forwarded twice;
//   * reorder   — the message is held back and released after its successor
//                 on the same (src,dst) channel (adjacent swap);
//   * delay     — the message is parked in a time-ordered queue and released
//                 by a pump thread ~delay_s later;
//   * stall     — a scripted per-rank event: everything rank r sends during a
//                 T-second window is held until the window ends (GC pause /
//                 OS jitter / slow-NIC model);
//   * blackout  — after N total sends every message is dropped (the
//                 loss-beyond-retry scenario for checkpoint recovery tests).
//
// Fault decisions are drawn from one xoshiro RNG per (src,dst) channel,
// seeded by hash(plan.seed, src, dst): a given channel sees the same fault
// sequence for the same sequence of sends regardless of what other channels
// do. recv/try_recv/pending/stats pass straight through to the inner channel.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "net/channel.hpp"
#include "support/rng.hpp"

namespace repro::fault {

/// Per-(src,dst) fault probabilities, applied independently per message.
struct ChannelFaultSpec {
  double drop = 0.0;       ///< message vanishes
  double duplicate = 0.0;  ///< message forwarded twice
  double reorder = 0.0;    ///< message released after its successor
  double delay = 0.0;      ///< message parked for ~delay_s
  double delay_s = 1e-3;   ///< mean park time for delayed messages
};

/// Scripted stall: once `rank` has sent `after_sends` messages, everything it
/// sends for the next `duration_s` seconds is held until the window ends.
struct StallEvent {
  int rank = 0;
  std::uint64_t after_sends = 0;
  double duration_s = 0.0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  ChannelFaultSpec base;  ///< every (src,dst) channel, unless overridden
  std::map<std::pair<int, int>, ChannelFaultSpec> overrides;
  std::vector<StallEvent> stalls;
  /// After this many total sends, every message is dropped.
  std::uint64_t blackout_after = std::numeric_limits<std::uint64_t>::max();

  const ChannelFaultSpec& spec(int src, int dst) const {
    const auto it = overrides.find({src, dst});
    return it != overrides.end() ? it->second : base;
  }

  /// Same drop/duplicate/reorder probabilities on every channel.
  static FaultPlan uniform(std::uint64_t seed, double drop,
                           double duplicate = 0.0, double reorder = 0.0,
                           double delay = 0.0) {
    FaultPlan plan;
    plan.seed = seed;
    plan.base.drop = drop;
    plan.base.duplicate = duplicate;
    plan.base.reorder = reorder;
    plan.base.delay = delay;
    return plan;
  }
};

/// Injection counters (what the fault layer did to the traffic).
struct FaultStats {
  std::uint64_t forwarded = 0;   ///< messages passed through unharmed
  std::uint64_t dropped = 0;     ///< includes blackout drops
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
  std::uint64_t stalled = 0;
};

class FaultInjector final : public net::Channel {
 public:
  FaultInjector(std::shared_ptr<net::Channel> inner, FaultPlan plan);
  ~FaultInjector() override;

  int nranks() const override { return inner_->nranks(); }
  void send(net::Message msg) override;
  std::optional<net::Message> recv(int rank) override {
    return inner_->recv(rank);
  }
  std::optional<net::Message> try_recv(int rank) override {
    return inner_->try_recv(rank);
  }
  std::size_t pending(int rank) const override {
    return inner_->pending(rank);
  }
  void close() override;
  bool closed() const override { return inner_->closed(); }
  net::TrafficStats stats() const override { return inner_->stats(); }
  /// Never lossless: this decorator exists to drop/duplicate/reorder, so a
  /// reliability layer above must retain full retransmit copies.
  bool lossless() const override { return false; }

  FaultStats fault_stats() const;
  const std::shared_ptr<net::Channel>& inner() const { return inner_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct ChannelState {
    explicit ChannelState(std::uint64_t seed) : rng(seed) {}
    Rng rng;
    std::optional<net::Message> held;  ///< reorder holdback slot
  };

  ChannelState& channel(int src, int dst);
  /// Forward to the inner channel, tolerating shutdown races: a message
  /// landing on a closed inner channel is moot, not an error.
  void forward(net::Message msg);
  void park(net::Message msg, double seconds);
  void pump_loop();

  std::shared_ptr<net::Channel> inner_;
  FaultPlan plan_;

  mutable std::mutex mutex_;
  std::map<std::pair<int, int>, ChannelState> channels_;
  std::vector<std::uint64_t> sends_per_rank_;
  std::vector<Clock::time_point> stall_until_;
  std::vector<std::size_t> next_stall_;
  std::uint64_t total_sends_ = 0;
  FaultStats stats_;

  std::multimap<Clock::time_point, net::Message> parked_;
  std::condition_variable pump_cv_;
  bool stopping_ = false;
  std::thread pump_;
};

}  // namespace repro::fault
