#include "spec/stencil_spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace repro::spec {

namespace {

/// SplitMix64-style hash, the same construction the stencil problems use for
/// reproducible fields: no shared RNG state, stable across platforms.
unsigned long hash64(unsigned long z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9UL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebUL;
  return z ^ (z >> 31);
}

double unit_double(unsigned long h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

}  // namespace

int StencilSpec::radius() const {
  int r = 0;
  for (const StencilPoint& p : points) {
    for (int a = 0; a < kMaxRank; ++a) r = std::max(r, std::abs(p.offset[a]));
  }
  return r;
}

int StencilSpec::radius_xy() const {
  int r = 0;
  for (const StencilPoint& p : points) {
    r = std::max(r, std::max(std::abs(p.offset[0]), std::abs(p.offset[1])));
  }
  return r;
}

int StencilSpec::reach(int axis, int dir) const {
  int r = 0;
  for (const StencilPoint& p : points) {
    const int o = p.offset[static_cast<std::size_t>(axis)];
    if (dir > 0 && o > 0) r = std::max(r, o);
    if (dir < 0 && o < 0) r = std::max(r, -o);
  }
  return r;
}

double StencilSpec::coeff_sum() const {
  double sum = 0.0;
  for (const StencilPoint& p : points) sum += p.coeff;
  return sum;
}

void StencilSpec::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("StencilSpec: " + what);
  };
  if (rank < 1 || rank > kMaxRank) {
    fail("rank must be in [1, " + std::to_string(kMaxRank) + "]");
  }
  if (points.empty()) fail("point set is empty");
  for (const StencilPoint& p : points) {
    for (int a = 0; a < kMaxRank; ++a) {
      const int o = p.offset[static_cast<std::size_t>(a)];
      if (a >= rank && o != 0) {
        fail("offset on inactive axis " + std::to_string(a));
      }
      if (std::abs(o) > kMaxRadius) {
        fail("offset exceeds max radius " + std::to_string(kMaxRadius));
      }
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (points[i].offset == points[j].offset) fail("duplicate offset");
    }
  }
}

std::string StencilSpec::to_literal() const {
  std::string out = "StencilSpec{.name=\"" + name +
                    "\", .rank=" + std::to_string(rank) + ", .points={";
  char buf[64];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const StencilPoint& p = points[i];
    // %a round-trips the coefficient exactly.
    std::snprintf(buf, sizeof(buf), "{{%d,%d,%d},%a}", p.offset[0],
                  p.offset[1], p.offset[2], p.coeff);
    if (i != 0) out += ",";
    out += buf;
  }
  out += "}}";
  return out;
}

// ------------------------------------------------------- named constructors

StencilSpec StencilSpec::star5(const std::array<double, 5>& w) {
  StencilSpec s;
  s.name = "star5";
  s.rank = 2;
  // jacobi5's accumulation order: center, north, south, west, east.
  s.points = {{{0, 0, 0}, w[0]},  {{-1, 0, 0}, w[1]}, {{1, 0, 0}, w[2]},
              {{0, -1, 0}, w[3]}, {{0, 1, 0}, w[4]}};
  return s;
}

StencilSpec StencilSpec::star5() {
  // The repo's asymmetric test weights (Stencil5::test_weights): designed so
  // index bugs and transpositions change the answer.
  return star5({0.20, 0.23, 0.17, 0.19, 0.21});
}

StencilSpec StencilSpec::star9() {
  StencilSpec s;
  s.name = "star9";
  s.rank = 2;
  s.points = {{{0, 0, 0}, 0.5},     {{-1, 0, 0}, 0.1},  {{1, 0, 0}, 0.1},
              {{0, -1, 0}, 0.1},    {{0, 1, 0}, 0.1},   {{-2, 0, 0}, 0.025},
              {{2, 0, 0}, 0.025},   {{0, -2, 0}, 0.025},{{0, 2, 0}, 0.025}};
  return s;
}

StencilSpec StencilSpec::box9() {
  StencilSpec s;
  s.name = "box9";
  s.rank = 2;
  s.points = {{{0, 0, 0}, 0.2},     {{-1, 0, 0}, 0.125}, {{1, 0, 0}, 0.125},
              {{0, -1, 0}, 0.125},  {{0, 1, 0}, 0.125},  {{-1, -1, 0}, 0.075},
              {{-1, 1, 0}, 0.075},  {{1, -1, 0}, 0.075}, {{1, 1, 0}, 0.075}};
  return s;
}

StencilSpec StencilSpec::heat3d() {
  StencilSpec s;
  s.name = "heat3d";
  s.rank = 3;
  s.points = {{{0, 0, 0}, 0.4},  {{-1, 0, 0}, 0.1}, {{1, 0, 0}, 0.1},
              {{0, -1, 0}, 0.1}, {{0, 1, 0}, 0.1},  {{0, 0, -1}, 0.1},
              {{0, 0, 1}, 0.1}};
  return s;
}

StencilSpec StencilSpec::advect2d() {
  // First-order upwind advection with velocity (cy, cx) = (0.2, 0.3): an
  // asymmetric 3-point subset — exercises arbitrary point sets (no south or
  // east taps at all).
  StencilSpec s;
  s.name = "advect2d";
  s.rank = 2;
  s.points = {{{0, 0, 0}, 0.5}, {{0, -1, 0}, 0.3}, {{-1, 0, 0}, 0.2}};
  return s;
}

StencilSpec StencilSpec::box27() {
  StencilSpec s;
  s.name = "box27";
  s.rank = 3;
  s.points.push_back({{0, 0, 0}, 0.2});
  const double w = 0.8 / 26.0;
  for (int di = -1; di <= 1; ++di) {
    for (int dj = -1; dj <= 1; ++dj) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (di == 0 && dj == 0 && dz == 0) continue;
        s.points.push_back({{di, dj, dz}, w});
      }
    }
  }
  return s;
}

const std::vector<std::string>& spec_names() {
  static const std::vector<std::string> names = {
      "star5", "star9", "box9", "heat3d", "advect2d", "box27"};
  return names;
}

StencilSpec spec_by_name(const std::string& name) {
  if (name == "star5") return StencilSpec::star5();
  if (name == "star9") return StencilSpec::star9();
  if (name == "box9") return StencilSpec::box9();
  if (name == "heat3d") return StencilSpec::heat3d();
  if (name == "advect2d") return StencilSpec::advect2d();
  if (name == "box27") return StencilSpec::box27();
  std::string all;
  for (const std::string& n : spec_names()) {
    if (!all.empty()) all += "|";
    all += n;
  }
  throw std::invalid_argument("unknown stencil spec '" + name + "' (" + all +
                              ")");
}

StencilSpec random_spec(unsigned long seed) {
  StencilSpec s;
  s.name = "rand" + std::to_string(seed);
  unsigned long h = hash64(seed * 0x9e3779b97f4a7c15UL + 1);
  s.rank = 1 + static_cast<int>(h % 3);
  h = hash64(h);
  // Keep the stage chain and the z plane count small: xy radius <= 3 for 2D,
  // <= 2 once z participates (component count grows with both).
  const int radius = 1 + static_cast<int>(h % (s.rank == 3 ? 2 : 3));

  // Always include the center, then an independent coin per candidate offset
  // within the Chebyshev ball. Enumerate in deterministic row-major order.
  s.points.push_back({{0, 0, 0}, 0.0});
  const int rz = s.rank == 3 ? radius : 0;
  const int rj = s.rank >= 2 ? radius : 0;
  for (int di = -radius; di <= radius; ++di) {
    for (int dj = -rj; dj <= rj; ++dj) {
      for (int dz = -rz; dz <= rz; ++dz) {
        if (di == 0 && dj == 0 && dz == 0) continue;
        h = hash64(h);
        if (unit_double(h) < 0.35) s.points.push_back({{di, dj, dz}, 0.0});
      }
    }
  }
  // Raw weights in [0.05, 1.05), then normalized to sum 0.9 so iterating the
  // spec contracts any bounded field.
  double sum = 0.0;
  for (StencilPoint& p : s.points) {
    h = hash64(h);
    p.coeff = 0.05 + unit_double(h);
    sum += p.coeff;
  }
  for (StencilPoint& p : s.points) p.coeff *= 0.9 / sum;
  s.validate();
  return s;
}

// ------------------------------------------------------------ derived halos

int HaloRegion::order() const {
  int n = 0;
  for (int a = 0; a < kMaxRank; ++a) n += dir[static_cast<std::size_t>(a)] != 0;
  return n;
}

std::vector<HaloRegion> derive_halos(const StencilSpec& spec) {
  std::vector<HaloRegion> regions;
  for (int di = -1; di <= 1; ++di) {
    for (int dj = -1; dj <= 1; ++dj) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (di == 0 && dj == 0 && dz == 0) continue;
        const std::array<int, 3> dir{di, dj, dz};
        HaloRegion region;
        region.dir = dir;
        bool needed = false;
        for (const StencilPoint& p : spec.points) {
          bool matches = true;
          for (std::size_t a = 0; a < 3; ++a) {
            if (dir[a] > 0 && p.offset[a] <= 0) matches = false;
            if (dir[a] < 0 && p.offset[a] >= 0) matches = false;
          }
          if (!matches) continue;
          needed = true;
          for (std::size_t a = 0; a < 3; ++a) {
            if (dir[a] != 0) {
              region.depth[a] =
                  std::max(region.depth[a], std::abs(p.offset[a]));
            }
          }
        }
        if (needed) regions.push_back(region);
      }
    }
  }
  return regions;
}

int stage_count(const StencilSpec& spec) {
  return std::max(1, spec.radius_xy());
}

int ca_ghost_depth(const StencilSpec& spec, int steps) {
  if (steps < 1) throw std::invalid_argument("ca_ghost_depth: steps < 1");
  return stage_count(spec) * steps;
}

}  // namespace repro::spec
