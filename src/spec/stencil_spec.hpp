// Declarative stencil front end: an N-dimensional stencil described as a set
// of (offset, coefficient) points, from which everything downstream is
// DERIVED rather than hand-coded — per-neighbor halo regions (faces, edges,
// corners), the CA ghost-band recompute depth, and the atomic-stage
// decomposition (stages.hpp) that splits a radius-r stencil into r chained
// 1-deep stages (Qiqi Wang's construction, see PAPERS.md).
//
// Conventions:
//   * axis 0 = rows (i), axis 1 = cols (j) — the two DECOMPOSED axes the
//     tile grid distributes; axis 2 = z, folded into per-cell components by
//     the stage compiler (rank-3 specs run as "2.5D": x/y over tiles, z in
//     registers/planes).
//   * point ORDER is semantic: kernels accumulate taps in listed order, so
//     the order pins the floating-point rounding sequence. star5() lists
//     center, north, south, west, east — exactly jacobi5's order — which is
//     what makes the recognized 5-point path bit-identical to the classic
//     solver.
//   * boundary semantics are Dirichlet (the repo-wide convention): every
//     cell outside the interior box holds a fixed g(i, j, z).
#pragma once

#include <array>
#include <string>
#include <vector>

namespace repro::spec {

inline constexpr int kMaxRank = 3;
inline constexpr int kMaxRadius = 3;

/// One stencil tap: offset vector (row, col, z; unused trailing axes zero)
/// plus its coefficient.
struct StencilPoint {
  std::array<int, 3> offset{0, 0, 0};
  double coeff = 0.0;
};

struct StencilSpec {
  /// Boundary-condition semantics. Only Dirichlet is implemented; the enum
  /// exists so specs carry their semantics explicitly.
  enum class Boundary { Dirichlet };

  std::string name = "custom";
  int rank = 2;  ///< 1..3 active axes
  std::vector<StencilPoint> points;
  Boundary boundary = Boundary::Dirichlet;

  /// Max Chebyshev reach over ALL axes.
  int radius() const;
  /// Max Chebyshev reach over the decomposed axes (0, 1) only — this, not
  /// radius(), is the atomic-stage count (z offsets are tile-local).
  int radius_xy() const;
  /// Max offset extent along `axis` toward `dir` (+1 or -1). 0 = the spec
  /// never reads that direction.
  int reach(int axis, int dir) const;
  double coeff_sum() const;
  /// Throws std::invalid_argument on malformed specs: bad rank, empty or
  /// duplicate points, offsets beyond kMaxRadius or on inactive axes.
  void validate() const;
  /// Reproducible literal form (brace-initializer style) — printed by the
  /// fuzz harnesses so a failing random spec can be pasted into a test.
  std::string to_literal() const;

  // Named constructors (the --stencil= pool).
  static StencilSpec star5();  ///< classic 2D 5-point, jacobi5 tap order
  static StencilSpec star5(const std::array<double, 5>& w);  ///< c,n,s,w,e
  static StencilSpec star9();    ///< 2D radius-2 cross (2 atomic stages)
  static StencilSpec box9();     ///< 2D radius-1 box (corner exchanges)
  static StencilSpec heat3d();   ///< 3D 7-point (2.5D: z folded into planes)
  static StencilSpec advect2d(); ///< asymmetric 3-point upwind
  static StencilSpec box27();    ///< 3D radius-1 box
};

/// Stable CLI spelling list for --stencil= (star5 first: the default).
const std::vector<std::string>& spec_names();
/// Inverse of spec_names(); throws std::invalid_argument naming the accepted
/// spellings on anything else.
StencilSpec spec_by_name(const std::string& name);

/// Deterministic random spec for the fuzz pools: rank 1..3, radius <= 3,
/// a random point subset always containing the center, coefficients
/// hash-derived and normalized to sum 0.9 (contractive, so iterated random
/// fields stay bounded). Always valid.
StencilSpec random_spec(unsigned long seed);

// ------------------------------------------------------------ derived halos

/// One neighbor-direction ghost region the spec reads. `dir` has each
/// component in {-1, 0, 1} (not all zero); `depth[a]` is the number of cells
/// needed along every axis with dir[a] != 0 (0 on the others).
struct HaloRegion {
  std::array<int, 3> dir{0, 0, 0};
  std::array<int, 3> depth{0, 0, 0};
  /// 1 = face, 2 = edge, 3 = corner (number of nonzero dir axes).
  int order() const;
};

/// Direct-form halo regions: direction d is needed iff some point reads
/// strictly into that direction on EVERY nonzero axis of d simultaneously
/// (a cross spec needs faces only; a box spec needs faces + corners).
std::vector<HaloRegion> derive_halos(const StencilSpec& spec);

/// Atomic-stage count of the staged execution: max(1, radius_xy()).
int stage_count(const StencilSpec& spec);

/// CA ghost-band depth on the decomposed axes for an s-step superstep under
/// staged execution: one layer per stage-iteration = stage_count * steps.
int ca_ghost_depth(const StencilSpec& spec, int steps);

}  // namespace repro::spec
