// Atomic-stage decomposition: compile a StencilSpec into a cyclic program of
// radius-1 multi-component stages (Qiqi Wang's "swept"/atomic-stage
// construction, generalized to arbitrary point sets).
//
// Construction. Let r = radius_xy (Chebyshev reach over the decomposed
// axes) and clamp(o, k) limit each decomposed coordinate of offset o to
// [-k, k]. For t = 1..r-1 the level set V_t = { clamp(o_xy, r - t) } names
// the intermediate components; component (t, v) holds the weighted partial
//
//     c^t_v(x) = sum_{o : clamp(o_xy, r-t) = v} w_o * u(x + (o_xy - v), ...)
//
// Because clamp(clamp(o, k+1), k) = clamp(o, k), each v' in V_{t-1} has
// exactly one successor v = clamp(v', r - t), giving the recurrence
//
//     c^t_v(x) = sum_{v' -> v} c^{t-1}_{v'}(x + (v' - v))
//
// where every shift o_xy - clamp(o_xy, r-1) (stage 1) and v' - v (later
// stages) lies in {-1, 0, 1}^2 — each stage reads at most one cell deep.
// Stage r reassembles the field: u'(x) = sum_{v' in V_{r-1}} c^{r-1}_{v'}
// (x + v'), which telescopes back to sum_o w_o u(x + o) exactly (same terms,
// regrouped — bit-exactness against a DIRECT wide-stencil evaluation is only
// up to FP reassociation, which is why the serial oracle runs this same
// staged program).
//
// Rank 3 runs as 2.5D: z is folded into components (one field plane per z
// index, Dirichlet z-boundary planes included), z offsets are consumed at
// stage 1 as component index deltas, and only the two decomposed axes are
// staged — a 7-point heat3d spec compiles to a SINGLE stage.
//
// Exterior (Dirichlet) cells: intermediate components are never recomputed
// outside the interior, so their boundary-ring values are STATIC partials of
// the boundary data. Every component carries an explicit pad rule
// (ExteriorTerm list) evaluated once at init; a ring cell of component c
// holds sum_k w_k * G(i + di_k, j + dj_k, z_k) with G the global Dirichlet /
// initial sampler. (Stage-consistency is why components are allocated per
// (stage level, remainder) pair and never shared across levels.)
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "spec/stencil_spec.hpp"

namespace repro::spec {

/// One read of the stage kernel: component plane + decomposed-axis shift.
/// Taps are accumulated in listed order (semantic: pins FP rounding).
struct StageTap {
  int in_comp = 0;
  int di = 0;  ///< row shift, in {-1, 0, 1}
  int dj = 0;  ///< col shift, in {-1, 0, 1}
  double w = 0.0;
};

/// One component plane a stage writes. Components without an output in a
/// given stage carry their previous value through (the driver copies the
/// whole buffer before applying the stage).
struct StageOutput {
  int comp = 0;
  std::vector<StageTap> taps;
};

struct Stage {
  std::vector<StageOutput> outputs;
};

/// One term of a component's static exterior fill rule: weight * sample at
/// (i + di, j + dj) in absolute z plane `z` (see CompiledProgram::zlo).
struct ExteriorTerm {
  double w = 0.0;
  int di = 0;
  int dj = 0;
  int z = 0;  ///< absolute z plane index in [-zlo, nz + zhi) shifted by +zlo
};

/// A compiled staged stencil: ncomp planes per cell, nstages radius-1 stages
/// applied cyclically. Field planes are components [0, nfield): plane c holds
/// z index (c - zlo), with planes outside [zlo, zlo + nz) being frozen
/// Dirichlet z-boundary planes. Intermediate components follow.
struct CompiledProgram {
  int rank = 2;
  int nz = 1;       ///< interior z planes
  int zlo = 0;      ///< z ghost planes below (rank 3 only)
  int zhi = 0;      ///< z ghost planes above
  int nfield = 1;   ///< nz + zlo + zhi — the planes halo exchange must carry
  int ncomp = 1;    ///< total planes per cell
  int nstages = 1;
  bool diagonal_taps = false;  ///< any tap with di != 0 && dj != 0
  std::vector<Stage> stages;
  /// Per-component exterior fill rule (see file comment). Field plane c gets
  /// the identity rule {1.0, 0, 0, c}.
  std::vector<std::vector<ExteriorTerm>> pad;
  /// Set when the program is the classic single-stage 2D 5-point stencil in
  /// jacobi5 tap order (c, n, s, w, e) — the driver dispatches the optimized
  /// cache-blocked jacobi5 kernels for it.
  std::optional<std::array<double, 5>> star5;

  /// Flops per computed cell per STAGE, averaged over the cycle (so
  /// flops_per_point * stage_cell_updates approximates total flops the same
  /// way the 5-point path's 9 * points does).
  double flops_per_point() const;
  /// Total taps across the whole cycle (one full iteration, all z planes).
  long long taps_total() const;
};

/// Compile `spec` for `nz` interior z planes (must be 1 for rank <= 2).
/// Validates the spec; throws std::invalid_argument on malformed input.
CompiledProgram compile_spec(const StencilSpec& spec, int nz = 1);

}  // namespace repro::spec
