#include "spec/stages.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::spec {

namespace {

int clamp1(int v, int k) { return std::clamp(v, -k, k); }

/// clamp(o_xy, k) over the decomposed axes.
std::array<int, 2> clamp_xy(const std::array<int, 3>& o, int k) {
  return {clamp1(o[0], k), clamp1(o[1], k)};
}

/// Ordered-unique level set V_t: first-occurrence order over the spec's
/// point list, so compilation is deterministic and order-preserving (the
/// point order pins the FP accumulation sequence of stage 1).
std::vector<std::array<int, 2>> level_set(const StencilSpec& spec, int k) {
  std::vector<std::array<int, 2>> vs;
  for (const StencilPoint& p : spec.points) {
    const std::array<int, 2> v = clamp_xy(p.offset, k);
    if (std::find(vs.begin(), vs.end(), v) == vs.end()) vs.push_back(v);
  }
  return vs;
}

}  // namespace

double CompiledProgram::flops_per_point() const {
  double total = 0.0;
  for (const Stage& st : stages) {
    for (const StageOutput& out : st.outputs) {
      total += 2.0 * static_cast<double>(out.taps.size()) - 1.0;
    }
  }
  return total / static_cast<double>(nstages);
}

long long CompiledProgram::taps_total() const {
  long long total = 0;
  for (const Stage& st : stages) {
    for (const StageOutput& out : st.outputs) {
      total += static_cast<long long>(out.taps.size());
    }
  }
  return total;
}

CompiledProgram compile_spec(const StencilSpec& spec, int nz) {
  spec.validate();
  if (nz < 1) throw std::invalid_argument("compile_spec: nz must be >= 1");
  if (spec.rank < 3 && nz != 1) {
    throw std::invalid_argument("compile_spec: nz > 1 requires a rank-3 spec");
  }

  CompiledProgram prog;
  prog.rank = spec.rank;
  prog.nz = nz;
  prog.zlo = spec.reach(2, -1);
  prog.zhi = spec.reach(2, +1);
  prog.nfield = nz + prog.zlo + prog.zhi;
  const int r = stage_count(spec);
  prog.nstages = r;

  // Field planes: component c holds z plane (c - zlo); exterior rule is the
  // identity sample of that plane.
  prog.pad.resize(static_cast<std::size_t>(prog.nfield));
  for (int c = 0; c < prog.nfield; ++c) {
    prog.pad[static_cast<std::size_t>(c)] = {{1.0, 0, 0, c}};
  }
  prog.ncomp = prog.nfield;

  if (r == 1) {
    // Single stage: the spec applied directly, z offsets as plane deltas.
    Stage stage;
    for (int z = 0; z < nz; ++z) {
      StageOutput out;
      out.comp = prog.zlo + z;
      for (const StencilPoint& p : spec.points) {
        out.taps.push_back(
            {prog.zlo + z + p.offset[2], p.offset[0], p.offset[1], p.coeff});
      }
      stage.outputs.push_back(std::move(out));
    }
    prog.stages.push_back(std::move(stage));
  } else {
    // Intermediate components, allocated per (level t, remainder v, z):
    // sharing a slot across levels would break the static exterior rule
    // (the same remainder groups DIFFERENT offsets at different levels).
    std::vector<std::vector<std::array<int, 2>>> levels;  // V_1 .. V_{r-1}
    for (int t = 1; t <= r - 1; ++t) {
      levels.push_back(level_set(spec, r - t));
    }
    // comp id of (t, v, z), t in 1..r-1.
    auto comp_of = [&](int t, const std::array<int, 2>& v, int z) {
      int id = prog.nfield;
      for (int tt = 1; tt < t; ++tt) {
        id += static_cast<int>(levels[static_cast<std::size_t>(tt - 1)].size()) * nz;
      }
      const auto& vs = levels[static_cast<std::size_t>(t - 1)];
      const auto it = std::find(vs.begin(), vs.end(), v);
      id += static_cast<int>(it - vs.begin()) * nz + z;
      return id;
    };
    for (const auto& vs : levels) {
      prog.ncomp += static_cast<int>(vs.size()) * nz;
    }
    prog.pad.resize(static_cast<std::size_t>(prog.ncomp));

    // Stage 1: weighted gather from the field planes, grouped by
    // clamp(o_xy, r-1). Point order within a group is preserved.
    {
      Stage stage;
      for (const std::array<int, 2>& v : levels[0]) {
        for (int z = 0; z < nz; ++z) {
          StageOutput out;
          out.comp = comp_of(1, v, z);
          auto& rule = prog.pad[static_cast<std::size_t>(out.comp)];
          for (const StencilPoint& p : spec.points) {
            if (clamp_xy(p.offset, r - 1) != v) continue;
            const int di = p.offset[0] - v[0];
            const int dj = p.offset[1] - v[1];
            const int plane = prog.zlo + z + p.offset[2];
            out.taps.push_back({plane, di, dj, p.coeff});
            rule.push_back({p.coeff, di, dj, plane});
          }
          stage.outputs.push_back(std::move(out));
        }
      }
      prog.stages.push_back(std::move(stage));
    }

    // Stages 2..r-1: funnel level t-1 components into level t
    // (v = clamp(v', r - t); shifts v' - v are 1-deep by construction).
    for (int t = 2; t <= r - 1; ++t) {
      Stage stage;
      const auto& prev = levels[static_cast<std::size_t>(t - 2)];
      for (const std::array<int, 2>& v : levels[static_cast<std::size_t>(t - 1)]) {
        for (int z = 0; z < nz; ++z) {
          StageOutput out;
          out.comp = comp_of(t, v, z);
          auto& rule = prog.pad[static_cast<std::size_t>(out.comp)];
          for (const std::array<int, 2>& vp : prev) {
            if (std::array<int, 2>{clamp1(vp[0], r - t),
                                   clamp1(vp[1], r - t)} != v) {
              continue;
            }
            out.taps.push_back(
                {comp_of(t - 1, vp, z), vp[0] - v[0], vp[1] - v[1], 1.0});
          }
          // Exterior rule: the union of the source groups' rules, each term
          // shifted by (v' - v) — still a static partial of boundary data.
          for (const StageTap& tap : out.taps) {
            for (const ExteriorTerm& term :
                 prog.pad[static_cast<std::size_t>(tap.in_comp)]) {
              rule.push_back(
                  {term.w, term.di + tap.di, term.dj + tap.dj, term.z});
            }
          }
          stage.outputs.push_back(std::move(out));
        }
      }
      prog.stages.push_back(std::move(stage));
    }

    // Stage r: reassemble the field from V_{r-1}; every shift is v' itself.
    {
      Stage stage;
      const auto& prev = levels[static_cast<std::size_t>(r - 2)];
      for (int z = 0; z < nz; ++z) {
        StageOutput out;
        out.comp = prog.zlo + z;
        for (const std::array<int, 2>& vp : prev) {
          out.taps.push_back({comp_of(r - 1, vp, z), vp[0], vp[1], 1.0});
        }
        stage.outputs.push_back(std::move(out));
      }
      prog.stages.push_back(std::move(stage));
    }
  }

  for (const Stage& st : prog.stages) {
    for (const StageOutput& out : st.outputs) {
      for (const StageTap& tap : out.taps) {
        if (tap.di != 0 && tap.dj != 0) prog.diagonal_taps = true;
        if (std::abs(tap.di) > 1 || std::abs(tap.dj) > 1) {
          throw std::logic_error("compile_spec: stage tap deeper than 1");
        }
      }
    }
  }

  // Recognize the classic 2D 5-point stencil in jacobi5 tap order so the
  // driver can dispatch the optimized cache-blocked kernels.
  if (spec.rank == 2 && prog.nstages == 1 && prog.ncomp == 1 &&
      prog.stages[0].outputs.size() == 1) {
    const auto& taps = prog.stages[0].outputs[0].taps;
    constexpr std::array<std::array<int, 2>, 5> pattern = {
        {{0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1}}};
    if (taps.size() == 5) {
      bool match = true;
      std::array<double, 5> w{};
      for (std::size_t i = 0; i < 5; ++i) {
        if (taps[i].di != pattern[i][0] || taps[i].dj != pattern[i][1]) {
          match = false;
          break;
        }
        w[i] = taps[i].w;
      }
      if (match) prog.star5 = w;
    }
  }
  return prog;
}

}  // namespace repro::spec
