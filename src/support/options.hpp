// Minimal command-line option parsing for bench harnesses and examples.
//
// Accepted forms: --key=value and --flag (boolean true). The space-separated
// "--key value" form is deliberately unsupported: it is ambiguous with a flag
// followed by a positional argument. Positional arguments are collected
// separately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace repro {

class Options {
 public:
  Options() = default;
  Options(int argc, char** argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace repro
