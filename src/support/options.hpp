// Minimal command-line option parsing for bench harnesses and examples.
//
// Accepted forms: --key=value and --flag (boolean true). The space-separated
// "--key value" form is deliberately unsupported: it is ambiguous with a flag
// followed by a positional argument. Positional arguments are collected
// separately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace repro {

class Options {
 public:
  Options() = default;
  Options(int argc, char** argv);

  bool has(const std::string& key) const;

  /// Raw value of --key=..., or `fallback` when the key is absent.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  /// Integer value via strtoll; absent key -> fallback, garbage -> 0.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// Double value via strtod; absent key -> fallback, garbage -> 0.
  double get_double(const std::string& key, double fallback) const;
  /// True for "true"/"1"/"yes" (and for a bare --flag); absent -> fallback.
  bool get_bool(const std::string& key, bool fallback) const;
  /// Value constrained to `allowed` (e.g. --kernel=scalar|vector|blocked|
  /// temporal). Absent key -> fallback; a value outside `allowed` throws
  /// std::invalid_argument listing the accepted spellings, so benches fail
  /// loudly instead of silently running the default configuration.
  std::string get_choice(const std::string& key, const std::string& fallback,
                         const std::vector<std::string>& allowed) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace repro
