#include "support/units.hpp"

#include <cstdio>

namespace repro {

std::string format_bytes(std::size_t bytes) {
  char buf[64];
  if (bytes >= GiB && bytes % GiB == 0) {
    std::snprintf(buf, sizeof(buf), "%zuGiB", bytes / GiB);
  } else if (bytes >= MiB && bytes % MiB == 0) {
    std::snprintf(buf, sizeof(buf), "%zuMiB", bytes / MiB);
  } else if (bytes >= KiB && bytes % KiB == 0) {
    std::snprintf(buf, sizeof(buf), "%zuKiB", bytes / KiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace repro
