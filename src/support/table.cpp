#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace repro {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width does not match headers");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::cell(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  ";
    rule.append(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open CSV output: " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace repro
