#include "support/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace repro {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      values_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Options::get_choice(const std::string& key,
                                const std::string& fallback,
                                const std::vector<std::string>& allowed) const {
  const std::string value = get_string(key, fallback);
  for (const auto& candidate : allowed) {
    if (value == candidate) return value;
  }
  std::string expected;
  for (const auto& candidate : allowed) {
    if (!expected.empty()) expected += ", ";
    expected += candidate;
  }
  throw std::invalid_argument("--" + key + "=" + value +
                              " is not a valid choice (expected one of: " +
                              expected + ")");
}

}  // namespace repro
