// Wall-clock timing helpers built on std::chrono::steady_clock.
#pragma once

#include <chrono>

namespace repro {

/// Seconds since an arbitrary steady epoch.
inline double wall_time() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

/// Scoped stopwatch: `Timer t; ...; double s = t.elapsed();`
class Timer {
 public:
  Timer() : start_(wall_time()) {}

  void reset() { start_ = wall_time(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const { return wall_time() - start_; }

 private:
  double start_;
};

}  // namespace repro
