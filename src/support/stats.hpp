// Order statistics and summary statistics over samples of doubles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace repro {

/// Summary of a sample: computed once over a copy, cheap to pass around.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // population standard deviation
};

/// Compute a full Summary. An empty sample yields an all-zero Summary.
Summary summarize(std::span<const double> samples);

/// p-th percentile (p in [0,100]) with linear interpolation between ranks.
/// An empty sample yields 0; a NaN p yields NaN. Out-of-range p is clamped.
double percentile(std::span<const double> samples, double p);

/// Same, but `sorted` must already be ascending (no copy, no sort).
double percentile_sorted(std::span<const double> sorted, double p);

/// Median shorthand.
inline double median(std::span<const double> samples) {
  return percentile(samples, 50.0);
}

/// Online accumulator for streaming samples (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace repro
