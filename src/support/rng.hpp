// Deterministic, seedable pseudo-random generators.
//
// Tests and workload generators must be reproducible across runs and
// platforms, so we carry our own splitmix64/xoshiro256** rather than relying
// on implementation-defined std::default_random_engine behaviour.
#pragma once

#include <cstdint>

namespace repro {

/// splitmix64: tiny generator used to seed xoshiro and for cheap hashing.
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace repro
