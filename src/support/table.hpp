// Fixed-width console tables and CSV emission for benchmark harnesses.
//
// Every figure/table bench prints a human-readable table to stdout (the rows
// the paper reports) and can optionally mirror the same rows to a CSV file
// for plotting.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace repro {

/// Column-aligned text table. Usage:
///   Table t({"nodes", "base GF/s", "CA GF/s"});
///   t.add_row({"16", "601.2", "688.4"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format arithmetic cells with fixed precision.
  static std::string cell(double v, int precision = 2);
  static std::string cell(long long v);

  void print(std::ostream& os) const;

  /// Write headers+rows as CSV (no quoting: cells must not contain commas).
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner used between experiment blocks in bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace repro
