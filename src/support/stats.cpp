#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace repro {

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 50.0);

  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(s.count);

  double sq = 0.0;
  for (double x : sorted) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  // std::clamp propagates NaN, and casting a NaN rank to size_t is UB; bail
  // out before the cast.
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();

  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace repro
