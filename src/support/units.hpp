// Unit helpers: byte sizes, bandwidths, rates, and human-readable formatting.
//
// Conventions used throughout the project:
//   * sizes in bytes (std::size_t), times in seconds (double)
//   * memory bandwidth in bytes/second, network rate quoted in bits/second
//     (the paper quotes "32 Gb/s" links and "39.1 GB/s" STREAM results)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace repro {

inline constexpr std::size_t KiB = std::size_t{1} << 10;
inline constexpr std::size_t MiB = std::size_t{1} << 20;
inline constexpr std::size_t GiB = std::size_t{1} << 30;

/// Decimal units, used for bandwidths and FLOP rates (1 GB/s = 1e9 B/s).
inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

/// Convert a link rate quoted in gigabits/second to bytes/second.
constexpr double gbit_per_s(double gbit) { return gbit * 1e9 / 8.0; }

/// Convert bytes/second to gigabits/second (for printing network rates).
constexpr double to_gbit_per_s(double bytes_per_s) {
  return bytes_per_s * 8.0 / 1e9;
}

/// Convert bytes/second to gigabytes/second (decimal, STREAM convention).
constexpr double to_gb_per_s(double bytes_per_s) { return bytes_per_s / 1e9; }

/// Convert a FLOP rate to GFLOP/s.
constexpr double to_gflops(double flops_per_s) { return flops_per_s / 1e9; }

/// Microseconds/milliseconds as seconds, for readable constants.
constexpr double usec(double n) { return n * 1e-6; }
constexpr double msec(double n) { return n * 1e-3; }

/// Format a byte count as "256B", "4KiB", "2MiB" (power-of-two units).
std::string format_bytes(std::size_t bytes);

/// Format a double with the given precision into a std::string.
std::string format_double(double v, int precision = 2);

}  // namespace repro
