// Cache-line/SIMD aligned heap buffer.
//
// Stencil tiles and STREAM arrays want 64-byte alignment so that vectorized
// loads never split cache lines and false sharing between tiles is impossible.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

namespace repro {

/// Fixed-size, 64-byte-aligned array of trivially-destructible T.
/// Move-only: tiles are handed between runtime data copies by pointer, never
/// deep-copied implicitly.
template <typename T>
class AlignedBuffer {
  static constexpr std::size_t kAlignment = 64;

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T));
    data_ = static_cast<T*>(::operator new(bytes, std::align_val_t{kAlignment}));
  }

  /// Allocate and value-initialize every element.
  static AlignedBuffer zeroed(std::size_t count) {
    AlignedBuffer b(count);
    std::fill(b.begin(), b.end(), T{});
    return b;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  std::span<T> span() { return {data_, size_}; }
  std::span<const T> span() const { return {data_, size_}; }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  void release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlignment});
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace repro
