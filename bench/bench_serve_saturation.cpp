// Service-mode saturation sweep (extension): the solver farm under load.
//
// Open-loop clients (one thread per tenant) pace solve requests at an
// increasing offered rate against a single resident farm per load point.
// Each point reports achieved requests/s, acceptance rate, p50/p99
// submit-to-completion latency, aggregate goodput (grid-points x iterations
// of COMPLETED jobs per second), and the cross-tenant fairness ratio
// (max/min per-tenant goodput; equal quotas should hold it near 1).
//
// A background "whale" tenant keeps one long CA job resident so every sweep
// also exercises checkpoint-backed preemption (deadline submits from the
// paced tenants preempt it at superstep boundaries).
//
// SIGINT/SIGTERM are handled gracefully: clients stop submitting, in-flight
// work is cancelled at the last checkpoint, and the (validated) report is
// still emitted — the soak harness in CI relies on this contract.
//
//   bench_serve_saturation [--tenants=3] [--jobs=12] [--n=24] [--iters=4]
//       [--steps=2] [--workers=2] [--rates=2,8,32,128]
//       [--whale=1] [--seed=1] [--csv=...] [--report=...]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "serve/serve_report.hpp"
#include "serve/solver_farm.hpp"
#include "stencil/problem.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

std::vector<double> parse_rates(const std::string& csv) {
  std::vector<double> rates;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double r = std::stod(item);
    if (r > 0) rates.push_back(r);
  }
  return rates;
}

std::string fmt(double v, int prec = 1) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(prec);
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header(
      "Service-mode saturation: multi-tenant farm, one resident runtime",
      "extension beyond the paper -- the CA stencil as a served workload: "
      "admission control bounds memory, DRR bounds unfairness, superstep "
      "checkpoints bound preemption loss");

  const int tenants = static_cast<int>(options.get_int("tenants", 3));
  const int jobs = static_cast<int>(options.get_int("jobs", 12));
  const int n = static_cast<int>(options.get_int("n", 24));
  const int iters = static_cast<int>(options.get_int("iters", 4));
  const int steps = static_cast<int>(options.get_int("steps", 2));
  const int workers = static_cast<int>(options.get_int("workers", 2));
  const bool whale = options.get_int("whale", 1) != 0;
  const unsigned long seed =
      static_cast<unsigned long>(options.get_int("seed", 1));
  // --channel=persistent serves every wave over persistent halo channels
  // (serve::FarmConfig::persistent) — same results, registered-buffer wire.
  const bool persistent =
      options.get_choice("channel", "default", {"default", "persistent"}) ==
      "persistent";
  const std::vector<double> rates =
      parse_rates(options.get_string("rates", "2,8,32,128"));

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  Table table({"offered/s/client", "req/s", "accept %", "p50 ms", "p99 ms",
               "goodput Mpt/s", "fairness", "preempts"});
  serve::ServeReport report("bench_serve_saturation");
  report.set_param("tenants", tenants);
  report.set_param("jobs_per_client", jobs);
  report.set_param("n", n);
  report.set_param("iters", iters);
  report.set_param("steps", steps);
  report.set_param("workers_per_rank", workers);
  report.set_param("whale", whale ? 1 : 0);
  report.set_param("seed", static_cast<long long>(seed));
  report.set_param("channel", persistent ? "persistent" : "default");

  auto registry = std::make_shared<obs::MetricsRegistry>();
  std::shared_ptr<obs::TelemetryCollector> shared_telemetry;
  std::vector<serve::TenantStats> last_stats;
  double last_fairness = 0.0;
  std::uint64_t total_preemptions = 0;
  std::uint64_t total_submitted = 0;
  std::uint64_t total_completed = 0;
  double last_p99_ms = 0.0;

  for (const double rate : rates) {
    if (g_stop) break;

    serve::FarmConfig config;
    config.node_rows = 2;
    config.node_cols = 2;
    config.workers_per_rank = workers;
    config.metrics = registry;
    config.persistent = persistent;
    // --telemetry / --telemetry-dump=<path>: the farm scrapes its resident
    // runtime after every dispatched wave (source="serve"); attach
    // `repro_top --file=<path>` to watch the sweep point live. The collector
    // is shared across sweep points so the dump covers the whole run.
    config.telemetry_dump = options.get_string("telemetry-dump", "");
    config.telemetry = options.get_bool("telemetry", false) ||
                       !config.telemetry_dump.empty();
    if (config.telemetry) {
      if (!shared_telemetry) {
        shared_telemetry = std::make_shared<obs::TelemetryCollector>(
            config.node_rows * config.node_cols, config.telemetry_detectors,
            registry, "serve");
      }
      config.telemetry_collector = shared_telemetry;
    }
    // Paced tenants stay batched; only the whale crosses into windowed mode.
    config.preempt_cost_threshold =
        static_cast<long long>(n) * n * iters + 1;
    config.checkpoint_supersteps = 1;
    config.admission.max_queued = tenants * jobs + 8;
    config.admission.max_queued_per_tenant = jobs + 4;
    config.admission.max_cost_per_tenant = 1LL << 40;
    serve::SolverFarm farm(config);

    std::future<serve::SolveResponse> whale_future;
    if (whale) {
      serve::SolveRequest big;
      big.tenant = "whale";
      // ~50x a paced job: resident across the whole sweep point, windowed.
      big.problem = stencil::random_problem(4 * n, 4 * n,
                                           8 * ((iters + 3) / 4) * 4, seed);
      big.mb = 2 * n;
      big.nb = 2 * n;
      big.steps = 4;
      auto submission = farm.submit(big);
      if (submission.accepted()) whale_future = std::move(submission.response);
    }

    const double t0 = wall_time();
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> clients;
    std::vector<std::vector<std::future<serve::SolveResponse>>> futures(
        static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      clients.emplace_back([&, t] {
        const auto gap =
            std::chrono::duration<double>(1.0 / rate);
        for (int j = 0; j < jobs && !g_stop; ++j) {
          serve::SolveRequest request;
          request.tenant = "tenant-" + std::to_string(t);
          request.problem = stencil::random_problem(
              n, n, iters, seed + static_cast<unsigned long>(100 * t + j));
          request.mb = n / 2;
          request.nb = n / 2;
          request.steps = steps;
          request.deadline_s = 2.0;  // deadline submits preempt the whale
          auto submission = farm.submit(request);
          submitted.fetch_add(1);
          if (submission.accepted()) {
            accepted.fetch_add(1);
            futures[static_cast<std::size_t>(t)].push_back(
                std::move(submission.response));
          }
          std::this_thread::sleep_for(gap);
        }
      });
    }
    for (auto& c : clients) c.join();
    // Interrupted: cancel what is left at its last checkpoint. Otherwise
    // drain so every accepted job's latency is measured to completion.
    farm.shutdown(/*drain=*/g_stop == 0);
    for (auto& lane : futures) {
      for (auto& f : lane) f.wait();
    }
    if (whale_future.valid()) whale_future.wait();
    const double elapsed = wall_time() - t0;

    last_stats = farm.tenant_stats();
    std::vector<double> latencies;
    long long goodput = 0;
    long long goodput_min = -1, goodput_max = 0;
    for (const auto& s : last_stats) {
      if (s.tenant == "whale") {
        total_preemptions += s.preemptions;
        continue;
      }
      latencies.insert(latencies.end(), s.latency_s.begin(),
                       s.latency_s.end());
      total_completed += s.completed;
      goodput += s.goodput_points;
      goodput_max = std::max(goodput_max, s.goodput_points);
      goodput_min = goodput_min < 0
                        ? s.goodput_points
                        : std::min(goodput_min, s.goodput_points);
    }
    const double fairness =
        goodput_min > 0 ? static_cast<double>(goodput_max) /
                              static_cast<double>(goodput_min)
                        : 0.0;
    last_fairness = fairness;
    const double req_s =
        elapsed > 0 ? static_cast<double>(submitted.load()) / elapsed : 0.0;
    const double accept_pct =
        submitted.load() > 0 ? 100.0 * static_cast<double>(accepted.load()) /
                                   static_cast<double>(submitted.load())
                             : 0.0;
    const double p50 =
        latencies.empty() ? 0.0 : percentile(latencies, 50.0) * 1e3;
    const double p99 =
        latencies.empty() ? 0.0 : percentile(latencies, 99.0) * 1e3;
    total_submitted += submitted.load();
    last_p99_ms = p99;

    table.add_row({fmt(rate), fmt(req_s), fmt(accept_pct),
                   fmt(p50, 3), fmt(p99, 3),
                   fmt(static_cast<double>(goodput) / elapsed / 1e6, 2),
                   fmt(fairness, 2), std::to_string(total_preemptions)});

    // The curve itself lives in totals as flat scalars (the schema keeps
    // params/totals scalar-only); the CSV carries the full table.
    const std::string key = "rate_" + fmt(rate, 0);
    report.set_total(key + "_requests_per_s", req_s);
    report.set_total(key + "_p50_ms", p50);
    report.set_total(key + "_p99_ms", p99);
    report.set_total(key + "_goodput_points_per_s",
                     elapsed > 0 ? static_cast<double>(goodput) / elapsed
                                 : 0.0);
  }

  table.print(std::cout);
  bench::maybe_csv(table, options, "serve_saturation.csv");
  if (g_stop) {
    std::cout << "\n(interrupted: drained at last checkpoint, report below "
                 "covers completed work)\n";
  }

  // Per-tenant rows from the LAST (highest-load) sweep point: that is where
  // fairness and tail latency are at their worst, i.e. the interesting bar.
  for (const auto& s : last_stats) {
    obs::Json row = obs::Json::object();
    row["tenant"] = s.tenant;
    row["submitted"] = static_cast<long long>(s.submitted);
    row["completed"] = static_cast<long long>(s.completed);
    row["rejected"] = static_cast<long long>(s.rejected);
    row["cancelled"] = static_cast<long long>(s.cancelled);
    row["preemptions"] = static_cast<long long>(s.preemptions);
    row["deadline_misses"] = static_cast<long long>(s.deadline_misses);
    row["goodput_points"] = s.goodput_points;
    if (!s.latency_s.empty()) {
      row["p50_latency_s"] = percentile(s.latency_s, 50.0);
      row["p99_latency_s"] = percentile(s.latency_s, 99.0);
    }
    report.add_tenant(std::move(row));
  }
  report.set_total("fairness_ratio_last_point", last_fairness);
  report.set_total("whale_preemptions",
                   static_cast<long long>(total_preemptions));
  report.set_total("interrupted", g_stop ? 1 : 0);
  report.add_metrics(*registry);

  if (last_fairness > 0) {
    std::cout << "\nFairness (max/min tenant goodput at top load): "
              << fmt(last_fairness, 2)
              << (last_fairness <= 1.5 ? "  [OK <= 1.5]" : "  [UNFAIR]")
              << "\n";
  }

  if (shared_telemetry) {
    for (const obs::TelemetryEvent& event : shared_telemetry->events()) {
      std::cout << "telemetry: [" << event.detector << "] rank " << event.rank
                << " @ wave " << event.superstep << " value=" << event.value
                << "\n";
    }
  }

  // Normalized gate document. The client loops drive a fixed submit count,
  // so jobs_submitted is exact when the run was not interrupted; everything
  // load-dependent (completion rate, fairness, tail latency) gates as a
  // warn-only band — the curve shape is the signal, not the exact numbers.
  obs::BenchResult bench_doc("bench_serve_saturation");
  bench_doc.set_context("tenants", obs::Json(tenants));
  bench_doc.set_context("jobs_per_client", obs::Json(jobs));
  bench_doc.set_context("n", obs::Json(n));
  bench_doc.set_context("iters", obs::Json(iters));
  bench_doc.set_context("rates", obs::Json(options.get_string(
                                     "rates", "2,8,32,128")));
  if (!g_stop) {
    bench_doc.add_exact("jobs_submitted", total_submitted, "jobs");
  }
  bench_doc.add_ratio("completion_rate",
                      total_submitted > 0
                          ? static_cast<double>(total_completed) /
                                static_cast<double>(total_submitted)
                          : 0.0,
                      "higher", 5.0);
  bench_doc.add_ratio("fairness_last_point", last_fairness, "lower", 50.0);
  bench_doc.add_time("p99_last_point_s", last_p99_ms / 1e3, 75.0);
  bench::maybe_bench_json(bench_doc, options,
                          "BENCH_bench_serve_saturation.json");

  if (options.has("report")) {
    const std::string path =
        options.get_string("report", "serve_saturation.json");
    std::string error;
    const std::string text = report.to_string();
    if (!serve::validate_serve_report(text, &error)) {
      std::cerr << "serve report failed validation: " << error << "\n";
      return 1;
    }
    report.write(path);
    std::cout << "\n(wrote " << path << ")\n";
  }
  return 0;
}
