// Scheduler comparison: shared priority heap vs per-worker work stealing.
//
// PaRSEC's scheduler studies motivate this harness: the ready-queue
// discipline decides how task throughput scales with workers_per_rank. Two
// workloads bracket the question:
//   * task soup — thousands of tiny independent tasks on one rank. Every
//     pop of the shared heap crosses one mutex; the per-worker deques give
//     each worker a private lane, so this isolates scheduler overhead.
//   * stencil — the paper's CA workload (2x2 virtual nodes), where ready
//     tasks arrive in dependency-driven bursts and stealing has to cover
//     load imbalance between boundary and interior tiles.
//
// Reported per (scheduler, workers): wall time, tasks/s, steals and failed
// steals (zero for the shared heap). The stencil runs are asserted
// bit-identical to the serial reference — a scheduler that reorders wrongly
// fails here before it misleads anyone with a fast number. Note: on an
// oversubscribed host (fewer cores than workers) wall-clock differences
// mostly reflect scheduler overhead, not parallel speedup.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/runtime.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Scheduler comparison: shared priority heap vs work stealing",
                "PaRSEC ships multiple ready-queue schedulers because the "
                "discipline caps worker scaling; stealing should match or "
                "beat the shared heap once workers contend");

  const int tasks = static_cast<int>(options.get_int("tasks", 4000));
  const int reps = static_cast<int>(options.get_int("reps", 3));
  const int n = static_cast<int>(options.get_int("n", 256));
  const int iters = static_cast<int>(options.get_int("iters", 8));

  obs::RunReport report("bench_sched_compare");
  report.set_param("tasks", obs::Json(tasks));
  report.set_param("reps", obs::Json(reps));
  report.set_param("n", obs::Json(n));
  report.set_param("iters", obs::Json(iters));

  obs::BenchResult bench_doc("bench_sched_compare");
  bench_doc.set_context("tasks", obs::Json(tasks));
  bench_doc.set_context("n", obs::Json(n));
  bench_doc.set_context("iters", obs::Json(iters));

  const rt::SchedPolicy policies[] = {rt::SchedPolicy::PriorityFifo,
                                      rt::SchedPolicy::WorkStealing};

  // --------------------------------------------------------- task soup --
  std::cout << "Task soup: " << tasks << " independent ~1us tasks, 1 rank "
            << "(best of " << reps << ")\n";
  Table soup({"scheduler", "workers", "time ms", "tasks/s", "steals",
              "failed steals"});
  for (const int workers : {1, 2, 4, 8}) {
    for (const auto policy : policies) {
      double best_wall = 1e300;
      std::uint64_t steals = 0;
      std::uint64_t failed = 0;
      for (int rep = 0; rep < reps; ++rep) {
        rt::TaskGraph graph;
        for (int i = 0; i < tasks; ++i) {
          rt::TaskSpec t;
          t.key = rt::TaskKey{1, i, 0, 0};
          t.priority = i % 3;  // exercise the priority lane too
          t.body = [](rt::TaskContext&) {
            volatile double sink = 0.0;
            for (int s = 0; s < 200; ++s) sink = sink + s * 1e-3;
          };
          graph.add_task(std::move(t));
        }
        rt::Config config;
        config.nranks = 1;
        config.workers_per_rank = workers;
        config.scheduler = policy;
        rt::Runtime runtime(config);
        const rt::RunStats stats = runtime.run(graph);
        best_wall = std::min(best_wall, stats.wall_time_s);
        const auto snap = runtime.metrics()->snapshot();
        steals = static_cast<std::uint64_t>(
            snap.counter_total("rt_steals_total"));
        failed = static_cast<std::uint64_t>(
            snap.counter_total("rt_failed_steals_total"));
      }
      const double per_s = tasks / best_wall;
      soup.add_row({rt::sched_policy_name(policy), Table::cell(
                        static_cast<long long>(workers)),
                    Table::cell(best_wall * 1e3, 2), Table::cell(per_s, 0),
                    Table::cell(static_cast<long long>(steals)),
                    Table::cell(static_cast<long long>(failed))});
      obs::Json row = obs::Json::object();
      row["workload"] = obs::Json("soup");
      row["scheduler"] = obs::Json(rt::sched_policy_name(policy));
      row["workers"] = obs::Json(workers);
      row["time_ms"] = obs::Json(best_wall * 1e3);
      row["tasks_per_s"] = obs::Json(per_s);
      row["steals"] = obs::Json(steals);
      report.add_result(std::move(row));
      // Wall-clock gate metric: noisy on shared hosts, so the band is wide
      // and the regression gate treats "time" as warn-only by default.
      bench_doc.add_time("soup_" + std::string(rt::sched_policy_name(policy)) +
                             "_w" + std::to_string(workers) + "_s",
                         best_wall, 75.0);
    }
  }
  soup.print(std::cout);
  std::cout << '\n';
  bench::maybe_csv(soup, options, "sched_compare_soup.csv");

  // ------------------------------------------------------------ stencil --
  std::cout << "CA stencil (N=" << n << ", tile " << n / 8 << ", 2x2 nodes, "
            << iters << " iters, s=4; exactness asserted)\n";
  const stencil::Problem problem = stencil::random_problem(n, n, iters);
  const stencil::Grid2D expected = solve_serial(problem);
  Table st({"scheduler", "workers", "time ms", "tasks/s", "steals", "exact"});
  std::shared_ptr<obs::TelemetryCollector> last_telemetry;
  std::uint64_t stencil_tasks = 0;
  std::uint64_t stencil_messages = 0;
  std::uint64_t stencil_bytes = 0;
  for (const int workers : {2, 4}) {
    for (const auto policy : policies) {
      double best_wall = 1e300;
      std::size_t ntasks = 0;
      std::uint64_t steals = 0;
      bool exact = true;
      for (int rep = 0; rep < reps; ++rep) {
        stencil::DistConfig config;
        config.decomp = {n / 8, n / 8, 2, 2};
        config.steps = 4;
        config.workers_per_rank = workers;
        config.scheduler = policy;
        bench::apply_telemetry_flags(config, options);
        const stencil::DistResult r = run_distributed(problem, config);
        best_wall = std::min(best_wall, r.stats.wall_time_s);
        ntasks = r.stats.tasks_executed;
        exact = exact &&
                stencil::Grid2D::max_abs_diff(expected, r.grid) == 0.0;
        steals = static_cast<std::uint64_t>(
            r.metrics->snapshot().counter_total("rt_steals_total"));
        if (r.telemetry) last_telemetry = r.telemetry;
        // Graph-determined exactness anchors for the regression gate: every
        // (scheduler, workers) combination must execute the same DAG, so
        // these counters are identical across the whole sweep. They do grow
        // by the (deterministic) telemetry wire traffic under --telemetry,
        // so gate runs and baselines both leave it off.
        stencil_tasks = r.stats.tasks_executed;
        stencil_messages = r.stats.messages;
        stencil_bytes = r.stats.bytes;
      }
      const double per_s = static_cast<double>(ntasks) / best_wall;
      st.add_row({rt::sched_policy_name(policy),
                  Table::cell(static_cast<long long>(workers)),
                  Table::cell(best_wall * 1e3, 2), Table::cell(per_s, 0),
                  Table::cell(static_cast<long long>(steals)),
                  exact ? "yes" : "NO"});
      obs::Json row = obs::Json::object();
      row["workload"] = obs::Json("stencil");
      row["scheduler"] = obs::Json(rt::sched_policy_name(policy));
      row["workers"] = obs::Json(workers);
      row["time_ms"] = obs::Json(best_wall * 1e3);
      row["tasks_per_s"] = obs::Json(per_s);
      row["steals"] = obs::Json(steals);
      row["exact"] = obs::Json(exact);
      report.add_result(std::move(row));
      bench_doc.add_time("stencil_" +
                             std::string(rt::sched_policy_name(policy)) +
                             "_w" + std::to_string(workers) + "_s",
                         best_wall, 75.0);
      if (!exact) {
        std::cerr << "ERROR: scheduler " << rt::sched_policy_name(policy)
                  << " produced a non-exact grid\n";
        return 1;
      }
    }
  }
  st.print(std::cout);
  bench_doc.add_exact("stencil_tasks", stencil_tasks, "tasks");
  bench_doc.add_exact("stencil_messages", stencil_messages, "messages");
  bench_doc.add_exact("stencil_bytes", stencil_bytes, "bytes");
  bench::maybe_bench_json(bench_doc, options,
                          "BENCH_bench_sched_compare.json");
  bench::note_telemetry(report, last_telemetry);
  bench::maybe_report(report, options, "sched_compare_report.json");
  return 0;
}
