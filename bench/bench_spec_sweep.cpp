// Spec sweep: the fig. 8-style CA-vs-base comparison run over the stencil
// spec pool instead of the single hard-wired 5-point stencil.
//
// For every requested spec (--specs=star5,box9,heat3d,... — any spelling
// spec_by_name accepts) the bench runs the distributed solver in base
// (steps = 1) and CA (--steps) mode, reports points/s, remote halo traffic,
// and the redundant-compute fraction, and checks every run bit-for-bit
// against the spec's own serial reference (solve_serial_spec) on all z
// planes. The --report= artefact carries the optional "stencil_spec" block
// (one descriptor per swept spec) and is validated before writing.
//
// What to expect: multi-stage specs (star9: radius 2 = 2 atomic stages) pay
// more redundant recompute per CA superstep; diagonal-tap specs (box9,
// box27) add corner messages every superstep; rank-3 specs multiply halo
// bytes by their field-plane count.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "spec/stages.hpp"
#include "spec/stencil_spec.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/spec_kernel.hpp"

namespace {

using namespace repro;

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : text) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::header("Spec sweep: CA vs base across the stencil-spec pool",
                "per-spec points/s, halo bytes, and redundant-compute "
                "fraction; every run bit-identical to its serial reference");

  const int n = static_cast<int>(options.get_int("n", 384));
  const int tile = static_cast<int>(options.get_int("tile", 48));
  const int nodes = static_cast<int>(options.get_int("nodes", 2));
  const int iters = static_cast<int>(options.get_int("iters", 12));
  const int steps = static_cast<int>(options.get_int("steps", 3));
  // --fuse=F adds a "CA+fused" mode per spec: the fuse-ready graph rewritten
  // by rt::fuse_supersteps into windows of steps * stage_count * F atomic
  // stages per exchange. Specs whose window exceeds the tile extent are
  // skipped (the builder would reject them). F=1 keeps the sweep unchanged.
  const int fuse = static_cast<int>(options.get_int("fuse", 1));
  const int nz = static_cast<int>(options.get_int("nz", 4));
  const rt::SchedPolicy sched = rt::parse_sched_policy(
      options.get_choice("sched", "priority",
                         {"priority", "fifo", "lifo", "steal"}));
  // --channel=persistent routes every remote halo over pre-registered route
  // buffers (net::PersistentChannel); results must stay bit-identical.
  const bool persistent =
      options.get_choice("channel", "default", {"default", "persistent"}) ==
      "persistent";
  std::vector<std::string> names;
  if (options.has("specs")) {
    names = split_csv(options.get_string("specs", ""));
  } else {
    names = spec::spec_names();
  }

  obs::RunReport report("bench_spec_sweep");
  report.set_param("n", obs::Json(n));
  report.set_param("tile", obs::Json(tile));
  report.set_param("nodes", obs::Json(nodes * nodes));
  report.set_param("iters", obs::Json(iters));
  report.set_param("steps", obs::Json(steps));
  report.set_param("fuse", obs::Json(fuse));
  report.set_param("nz", obs::Json(nz));
  report.set_param("sched", obs::Json(rt::sched_policy_name(sched)));
  report.set_param("channel",
                   obs::Json(persistent ? "persistent" : "default"));

  Table table({"spec", "stages", "mode", "time ms", "Mpoints/s", "messages",
               "halo KiB", "redundant", "exact"});
  bool all_exact = true;

  for (const std::string& name : names) {
    const spec::StencilSpec sp = spec::spec_by_name(name);
    const spec::CompiledProgram program =
        spec::compile_spec(sp, sp.rank == 3 ? nz : 1);
    const stencil::Problem problem = stencil::spec_problem(
        sp, n, n, iters, sp.rank == 3 ? nz : 1);
    const std::vector<stencil::Grid2D> expected =
        stencil::solve_serial_spec(problem);

    obs::Json descriptor = obs::Json::object();
    descriptor["name"] = obs::Json(sp.name);
    descriptor["rank"] = obs::Json(sp.rank);
    descriptor["radius"] = obs::Json(sp.radius());
    descriptor["stages"] = obs::Json(program.nstages);
    descriptor["points"] = obs::Json(static_cast<long>(sp.points.size()));
    descriptor["field_planes"] = obs::Json(program.nfield);
    descriptor["diagonal_taps"] = obs::Json(program.diagonal_taps);
    report.add_stencil_spec(std::move(descriptor));

    struct Mode {
      const char* label;
      int steps;
      int fuse;
    };
    std::vector<Mode> modes = {{"base", 1, 1}, {"CA", steps, 1}};
    if (fuse > 1) {
      modes.push_back({"CA+fused", steps, fuse});
    }
    for (const Mode& m : modes) {
      const int run_steps = m.steps;
      if (run_steps * program.nstages * m.fuse > tile) {
        std::cout << "  (skipping " << sp.name << " " << m.label
                  << ": window " << run_steps * program.nstages * m.fuse
                  << " stages exceeds tile extent " << tile << ")\n";
        continue;
      }
      stencil::DistConfig config;
      config.decomp = {tile, tile, nodes, nodes};
      config.steps = run_steps;
      config.fuse_depth = m.fuse;
      config.scheduler = sched;
      config.workers_per_rank = 2;
      config.persistent = persistent;
      const stencil::DistResult r = stencil::run_distributed(problem, config);

      bool exact = true;
      for (std::size_t z = 0; z < expected.size(); ++z) {
        exact = exact &&
                stencil::Grid2D::max_abs_diff(expected[z], r.planes[z]) == 0.0;
      }
      all_exact = all_exact && exact;

      const double mpoints_s =
          static_cast<double>(r.computed_points) / r.stats.wall_time_s / 1e6;
      const char* mode = m.label;
      table.add_row({sp.name,
                     Table::cell(static_cast<long long>(program.nstages)), mode,
                     Table::cell(r.stats.wall_time_s * 1e3, 2),
                     Table::cell(mpoints_s, 1),
                     Table::cell(static_cast<double>(r.stats.messages), 0),
                     Table::cell(static_cast<double>(r.stats.bytes) / 1024.0,
                                 1),
                     Table::cell(r.redundancy(), 3), exact ? "yes" : "NO"});

      obs::Json row = obs::Json::object();
      row["spec"] = obs::Json(sp.name);
      row["mode"] = obs::Json(mode);
      row["steps"] = obs::Json(run_steps);
      row["fuse"] = obs::Json(m.fuse);
      row["stages"] = obs::Json(program.nstages);
      row["time_ms"] = obs::Json(r.stats.wall_time_s * 1e3);
      row["mpoints_per_s"] = obs::Json(mpoints_s);
      row["messages"] = obs::Json(static_cast<long>(r.stats.messages));
      row["halo_bytes"] = obs::Json(static_cast<long>(r.stats.bytes));
      row["redundant_fraction"] = obs::Json(r.redundancy());
      row["exact"] = obs::Json(exact);
      report.add_result(std::move(row));
    }
  }

  table.print(std::cout);
  std::cout << "\nall runs bit-identical to their serial reference: "
            << (all_exact ? "yes" : "NO") << "\n";
  report.set_derived("all_exact", obs::Json(all_exact));
  bench::maybe_csv(table, options, "spec_sweep.csv");
  bench::maybe_report(report, options, "spec_sweep_report.json");
  return all_exact ? 0 : 1;
}
