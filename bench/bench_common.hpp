// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <iostream>
#include <string>

#include "obs/run_report.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace repro::bench {

/// Standard header naming the paper artefact this binary regenerates.
inline void header(const std::string& artefact, const std::string& paper_says) {
  print_banner(std::cout, artefact);
  std::cout << "Paper reference: " << paper_says << "\n\n";
}

/// Write the table to --csv=<path> when requested.
inline void maybe_csv(const Table& table, const Options& options,
                      const std::string& default_name) {
  if (options.has("csv")) {
    const std::string path = options.get_string("csv", default_name);
    table.write_csv(path);
    std::cout << "\n(wrote " << path << ")\n";
  }
}

/// Write the machine-readable run report to --report=<path> when requested.
/// Validates the document before writing so a schema regression fails the
/// bench (and the CI smoke step) instead of producing a broken artefact.
inline void maybe_report(const obs::RunReport& report, const Options& options,
                         const std::string& default_name) {
  if (!options.has("report")) return;
  const std::string path = options.get_string("report", default_name);
  std::string error;
  const std::string text = report.to_string();
  if (!obs::validate_run_report(text, &error)) {
    throw std::runtime_error("run report failed validation: " + error);
  }
  report.write(path);
  std::cout << "\n(wrote " << path << ")\n";
}

}  // namespace repro::bench
