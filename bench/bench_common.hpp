// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "obs/bench_result.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "stencil/dist_stencil.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace repro::bench {

/// Standard header naming the paper artefact this binary regenerates.
inline void header(const std::string& artefact, const std::string& paper_says) {
  print_banner(std::cout, artefact);
  std::cout << "Paper reference: " << paper_says << "\n\n";
}

/// Write the table to --csv=<path> when requested.
inline void maybe_csv(const Table& table, const Options& options,
                      const std::string& default_name) {
  if (options.has("csv")) {
    const std::string path = options.get_string("csv", default_name);
    table.write_csv(path);
    std::cout << "\n(wrote " << path << ")\n";
  }
}

/// Write the machine-readable run report to --report=<path> when requested.
/// Validates the document before writing so a schema regression fails the
/// bench (and the CI smoke step) instead of producing a broken artefact.
inline void maybe_report(const obs::RunReport& report, const Options& options,
                         const std::string& default_name) {
  if (!options.has("report")) return;
  const std::string path = options.get_string("report", default_name);
  std::string error;
  const std::string text = report.to_string();
  if (!obs::validate_run_report(text, &error)) {
    throw std::runtime_error("run report failed validation: " + error);
  }
  report.write(path);
  std::cout << "\n(wrote " << path << ")\n";
}

/// Wire the shared --telemetry / --telemetry-dump flags into a real-mode run
/// config. --telemetry turns on the live cross-rank stream (detector events
/// land in the run's collector); --telemetry-dump=<path> implies it and
/// keeps a repro.telemetry/v1 file fresh for `tools/repro_top --file=<path>`.
inline void apply_telemetry_flags(stencil::DistConfig& config,
                                  const Options& options) {
  config.telemetry_dump = options.get_string("telemetry-dump", "");
  config.telemetry =
      options.get_bool("telemetry", false) || !config.telemetry_dump.empty();
}

/// Fold a run's telemetry into the report surface: detector events to
/// stdout, the full repro.telemetry/v1 stream into the RunReport's optional
/// "telemetry" block.
inline void note_telemetry(
    obs::RunReport& report,
    const std::shared_ptr<obs::TelemetryCollector>& telemetry) {
  if (!telemetry) return;
  report.set_telemetry(telemetry->to_json());
  for (const obs::TelemetryEvent& event : telemetry->events()) {
    std::cout << "telemetry: [" << event.detector << "] rank " << event.rank
              << " @ superstep " << event.superstep
              << " value=" << event.value
              << " threshold=" << event.threshold << "\n";
  }
}

/// Write the normalized gate document to --bench-json=<path> when requested
/// (validated first, like maybe_report). Committed baselines under
/// bench/baselines/ are diffed against these by
/// tools/check_bench_regression.py.
inline void maybe_bench_json(const obs::BenchResult& bench,
                             const Options& options,
                             const std::string& default_name) {
  if (!options.has("bench-json")) return;
  const std::string path = options.get_string("bench-json", default_name);
  std::string error;
  if (!obs::validate_bench_result(bench.to_json(), &error)) {
    throw std::runtime_error("bench result failed validation: " + error);
  }
  if (!bench.write(path)) {
    throw std::runtime_error("bench result write failed: " + path);
  }
  std::cout << "\n(wrote " << path << ")\n";
}

}  // namespace repro::bench
