// Fault sweep (extension): what reliability costs the CA stencil.
//
// The paper's runs assume a lossless interconnect; this harness measures the
// degradation when the channel is not. Two views per loss rate:
//   * real execution on this host: the CA stencil over
//     ReliableChannel(FaultInjector(Transport)) — wall time, retransmits,
//     duplicate suppression, wire vs clean message counts, and a checksum
//     proving the answer never changes;
//   * DES at paper scale: the same loss rate fed through sim::LossModel
//     (expected transmissions scale wire cost, expected timeout wait adds
//     latency), base vs CA — CA's s-times-fewer messages buy it s-times
//     fewer retransmission lotteries.
#include <memory>

#include "bench_common.hpp"
#include "fault/fault_injector.hpp"
#include "fault/reliable_channel.hpp"
#include "net/transport.hpp"
#include "sim/models.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Fault sweep (extension): lossy links vs the CA stencil",
                "reliability costs time, never correctness; CA's message "
                "avoidance also avoids retransmission stalls");

  const int n = static_cast<int>(options.get_int("n", 128));
  const int iters = static_cast<int>(options.get_int("iters", 12));
  const int steps = static_cast<int>(options.get_int("steps", 4));
  // 5 ms default: comfortably above this host's ack round-trip, so the
  // loss=0 row shows a clean zero-retransmit baseline; tighten to stress.
  const double timeout_ms = options.get_double("timeout-ms", 5.0);

  const stencil::Problem problem = stencil::laplace_problem(n, iters);
  const double reference = solve_serial(problem).interior_sum();

  std::cout << "Real CA run on this host (N=" << n << ", s=" << steps << ", "
            << iters << " iters, 2x2 nodes, retransmit timeout "
            << timeout_ms << " ms):\n";
  Table real({"loss %", "time ms", "clean msgs", "wire msgs", "retransmits",
              "dups dropped", "exact"});
  for (double loss : {0.0, 0.05, 0.10, 0.20}) {
    std::shared_ptr<fault::ReliableChannel> channel;
    stencil::DistConfig config;
    config.decomp = {n / 4, n / 4, 2, 2};
    config.steps = steps;
    config.workers_per_rank = 2;
    config.channel_factory = [&channel, loss, timeout_ms](int nranks) {
      auto transport = std::make_shared<net::Transport>(nranks);
      auto injector = std::make_shared<fault::FaultInjector>(
          transport, fault::FaultPlan::uniform(42, loss, loss / 2, loss / 2));
      fault::ReliableConfig reliable;
      reliable.timeout_s = timeout_ms * 1e-3;
      channel = std::make_shared<fault::ReliableChannel>(injector, reliable);
      return channel;
    };

    const auto result = run_distributed(problem, config);
    const auto rel = channel->reliable_stats();
    const auto wire = channel->stats();
    real.add_row({Table::cell(100.0 * loss, 0),
                  Table::cell(result.stats.wall_time_s * 1e3, 1),
                  Table::cell(static_cast<long long>(rel.data_sent)),
                  Table::cell(static_cast<long long>(wire.messages)),
                  Table::cell(static_cast<long long>(rel.retransmits)),
                  Table::cell(static_cast<long long>(rel.dup_dropped)),
                  result.grid.interior_sum() == reference ? "yes" : "NO"});
  }
  real.print(std::cout);
  bench::maybe_csv(real, options, "fault_sweep_real.csv");

  // Paper-scale model in the communication-bound regime (fast tuned kernel,
  // ratio 0.1, 64 nodes — the configuration where Figs. 8/9 show CA winning,
  // and where retransmission cost actually surfaces).
  const double ratio = options.get_double("ratio", 0.1);
  std::cout << "\nDES at paper scale (NaCL, N=23040, tile 288, 64 nodes, 100 "
               "iters, kernel ratio "
            << ratio << "):\n";
  Table model({"loss %", "E[attempts]", "E[wait] ms", "base GF/s", "CA GF/s",
               "base slowdown", "CA slowdown"});
  const sim::Machine machine = sim::nacl();
  double base0 = 0.0, ca0 = 0.0;
  for (double loss : {0.0, 0.05, 0.10, 0.20}) {
    sim::LossModel lm;
    lm.loss_rate = loss;
    sim::StencilSimParams base{machine, 23040, 288, 8, 8, 100, 1, ratio};
    base.loss = lm;
    sim::StencilSimParams ca = base;
    ca.steps = 15;
    const auto rb = sim::simulate_stencil(base);
    const auto rc = sim::simulate_stencil(ca);
    if (loss == 0.0) {
      base0 = rb.time_s;
      ca0 = rc.time_s;
    }
    model.add_row({Table::cell(100.0 * loss, 0),
                   Table::cell(lm.expected_attempts(), 3),
                   Table::cell(lm.expected_extra_latency_s() * 1e3, 3),
                   Table::cell(rb.gflops, 1), Table::cell(rc.gflops, 1),
                   Table::cell(rb.time_s / base0, 2),
                   Table::cell(rc.time_s / ca0, 2)});
  }
  model.print(std::cout);
  bench::maybe_csv(model, options, "fault_sweep_model.csv");
  return 0;
}
