// Fig. 8: tuned-kernel performance — GFLOP/s vs kernel-adjustment ratio.
//
// The ratio parameter updates only (ratio*mb) x (ratio*nb) of each tile,
// simulating a memory system / optimized kernel that is faster than the
// baseline. NaCL: N = 23k, tile 288; Stampede2: N = 55k, tile 864; 100
// iterations; CA step size 15; 4/16/64 nodes in square grids.
//
// Shapes to check (paper section VI-D):
//   * base == CA at large ratios (kernel-bound);
//   * CA pulls ahead as the ratio shrinks — the paper quotes 57% on 16 NaCL
//     nodes and ~14% at ratio 0.4 (Fig. 10's configuration), 18-33% on
//     Stampede2;
//   * the "base, original kernel" (ratio=1) row is Fig. 8's black line.
#include <algorithm>

#include "bench_common.hpp"
#include "sim/models.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Fig. 8: GFLOP/s vs kernel-adjustment ratio (CA s=15)",
                "CA wins when kernel time is small: up to 57% (NaCL@16) and "
                "33% (Stampede2); no difference at ratio ~0.6-0.8");

  const int iters = static_cast<int>(options.get_int("iters", 100));
  const int steps = static_cast<int>(options.get_int("steps", 15));

  obs::RunReport report("bench_fig8_kernel_ratio");
  report.set_param("iters", obs::Json(iters));
  report.set_param("steps", obs::Json(steps));
  double best_gain_pct = 0.0;

  struct System {
    sim::Machine machine;
    int n;
    int tile;
  };
  const System systems[] = {{sim::nacl(), 23040, 288},
                            {sim::stampede2(), 55296, 864}};

  for (const auto& sys : systems) {
    for (int side : {2, 4, 8}) {
      std::cout << sys.machine.name << ", " << side * side << " nodes:\n";
      const sim::StencilSimParams black{sys.machine, sys.n, sys.tile, side,
                                        side, iters, 1, 1.0};
      const double base_full = sim::simulate_stencil(black).gflops;

      Table table({"ratio", "base GF/s", "CA GF/s", "CA gain %",
                   "base(ratio=1) GF/s"});
      for (double ratio : {0.2, 0.3, 0.4, 0.6, 0.8}) {
        sim::StencilSimParams base = black;
        base.ratio = ratio;
        sim::StencilSimParams ca = base;
        ca.steps = steps;
        const auto rb = sim::simulate_stencil(base);
        const auto rc = sim::simulate_stencil(ca);
        const double gain_pct = 100.0 * (rc.gflops / rb.gflops - 1.0);
        table.add_row({Table::cell(ratio, 1), Table::cell(rb.gflops, 1),
                       Table::cell(rc.gflops, 1), Table::cell(gain_pct, 1),
                       Table::cell(base_full, 1)});
        best_gain_pct = std::max(best_gain_pct, gain_pct);
        obs::Json row = obs::Json::object();
        row["machine"] = obs::Json(sys.machine.name);
        row["nodes"] = obs::Json(side * side);
        row["ratio"] = obs::Json(ratio);
        row["base_gflops"] = obs::Json(rb.gflops);
        row["ca_gflops"] = obs::Json(rc.gflops);
        row["ca_gain_pct"] = obs::Json(gain_pct);
        row["messages"] = obs::Json(rc.sim.messages);
        row["bytes"] = obs::Json(rc.sim.message_bytes);
        report.add_result(std::move(row));
      }
      table.print(std::cout);
      std::cout << '\n';
      bench::maybe_csv(table, options,
                       "fig8_" + sys.machine.name + "_" +
                           std::to_string(side * side) + "n.csv");
    }
  }
  report.set_derived("best_ca_gain_pct", obs::Json(best_gain_pct));
  bench::maybe_report(report, options, "fig8_report.json");
  return 0;
}
