// Fig. 8: tuned-kernel performance — GFLOP/s vs kernel-adjustment ratio.
//
// Default (simulated) mode: the ratio parameter updates only
// (ratio*mb) x (ratio*nb) of each tile, simulating a memory system /
// optimized kernel that is faster than the baseline. NaCL: N = 23k, tile
// 288; Stampede2: N = 55k, tile 864; 100 iterations; CA step size 15;
// 4/16/64 nodes in square grids.
//
// --measured mode: the same base-vs-CA comparison executed FOR REAL on this
// host, with the kernel-time knob replaced by actual kernels from
// kernel_opt.hpp — scalar vs SIMD/blocked vs fused-temporal. The measured
// per-point speedup of the optimized kernel plays the role of the paper's
// ratio, and every run is checked bit-for-bit against the serial reference
// (unlike ratio < 1 runs, which are timing-only).
//
// Shapes to check (paper section VI-D):
//   * base == CA at large ratios / with the scalar kernel (kernel-bound);
//   * CA pulls ahead as kernel time shrinks — the paper quotes 57% on 16
//     NaCL nodes and ~14% at ratio 0.4, 18-33% on Stampede2;
//   * the "base, original kernel" (ratio=1) row is Fig. 8's black line.
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/trace_analysis.hpp"
#include "sim/models.hpp"
#include "spec/stencil_spec.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"

namespace {

using namespace repro;
using stencil::KernelVariant;

/// Best-of-reps seconds per full-tile sweep of one kernel variant on a
/// cache-resident ring-ghost tile (the paper's 288x288 NaCL tile).
double time_kernel_sweep(KernelVariant variant, int tile, int reps) {
  const stencil::TileGeom g{tile, tile, 1, 1, 1, 1};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  const stencil::Stencil5 w = stencil::Stencil5::laplace_jacobi();
  jacobi5_opt(in.data(), out.data(), g, w, 0, tile, 0, tile, variant);
  double best = 1e300;
  const int sweeps = 20;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < sweeps; ++s) {
      jacobi5_opt(in.data(), out.data(), g, w, 0, tile, 0, tile, variant);
      std::swap(in, out);
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count() / sweeps);
  }
  return best;
}

int run_measured(const Options& options) {
  bench::header(
      "Fig. 8 (measured): base vs CA with real scalar vs optimized kernels",
      "base ~= CA with the scalar kernel; CA ahead once the optimized "
      "kernel shrinks compute time; all runs bit-identical to serial");

  // Defaults tuned for a small host: tile 64 keeps per-superstep message
  // counts high enough that the CA advantage is visible above the noise of
  // an oversubscribed machine (see docs/REPRODUCING.md).
  const int n = static_cast<int>(options.get_int("n", 768));
  const int tile = static_cast<int>(options.get_int("tile", 64));
  const int nodes = static_cast<int>(options.get_int("nodes", 2));
  const int iters = static_cast<int>(options.get_int("iters", 40));
  const int steps = static_cast<int>(options.get_int("steps", 8));
  // --fuse=F adds a "CA / fused-wavefront" case: the per-step graph rewritten
  // by rt::fuse_supersteps into windows of steps*F iterations per exchange
  // (same wire traffic as steps*F supersteps, no special kernel needed, and
  // unlike the temporal kernel it composes with the optimized kernel, specs,
  // and every scheduler). --fuse=1 drops the case.
  const int fuse = static_cast<int>(options.get_int("fuse", 3));
  const int reps = static_cast<int>(options.get_int("reps", 5));
  const KernelVariant opt_variant = stencil::parse_kernel_variant(
      options.get_choice("kernel", "vector", {"vector", "blocked"}));
  // --sched= applies the chosen ready-queue discipline to every measured run
  // (exactness vs serial is asserted regardless, so this doubles as a quick
  // scheduler-correctness gate at bench scale).
  const rt::SchedPolicy sched = rt::parse_sched_policy(
      options.get_choice("sched", "priority",
                         {"priority", "fifo", "lifo", "steal"}));
  // --stencil= reruns the comparison over any named spec. star5 (default)
  // keeps the classic hard-wired 5-point path so the default run stays
  // byte-identical to the pre-spec bench; other specs run the compiled
  // atomic-stage program (and drop the fused-temporal case, which the
  // spec path does not support).
  const std::string stencil_name =
      options.get_choice("stencil", "star5", spec::spec_names());
  const bool spec_path = stencil_name != "star5";

  obs::RunReport report("bench_fig8_kernel_ratio_measured");
  report.set_param("stencil", obs::Json(stencil_name));
  report.set_param("mode", obs::Json("measured"));
  report.set_param("n", obs::Json(n));
  report.set_param("tile", obs::Json(tile));
  report.set_param("nodes", obs::Json(nodes * nodes));
  report.set_param("iters", obs::Json(iters));
  report.set_param("steps", obs::Json(steps));
  report.set_param("fuse", obs::Json(fuse));
  report.set_param("kernel", obs::Json(kernel_variant_name(opt_variant)));
  report.set_param("sched", obs::Json(rt::sched_policy_name(sched)));

  // The measured analogue of the paper's ratio axis: how much faster the
  // optimized kernel retires points than the scalar one.
  const double t_scalar = time_kernel_sweep(KernelVariant::Scalar, 288, reps);
  const double t_opt = time_kernel_sweep(opt_variant, 288, reps);
  const double kernel_speedup = t_scalar / t_opt;
  std::cout << "Kernel microbenchmark (288x288 tile, best of " << reps
            << "): scalar " << t_scalar * 1e6 << " us/sweep, "
            << kernel_variant_name(opt_variant) << " " << t_opt * 1e6
            << " us/sweep -> speedup " << kernel_speedup << "x\n"
            << "AVX2: " << (stencil::avx2_selected({}) ? "active" : "off")
            << "\n\n";
  report.set_derived("measured_kernel_speedup", obs::Json(kernel_speedup));
  report.set_derived("avx2_active", obs::Json(stencil::avx2_selected({})));

  const stencil::Problem problem =
      spec_path ? stencil::spec_problem(spec::spec_by_name(stencil_name), n,
                                        n, iters)
                : stencil::random_problem(n, n, iters);
  const stencil::Grid2D expected = stencil::solve_serial(problem);

  struct RunCase {
    const char* label;
    int steps;
    KernelVariant kernel;
    int fuse = 1;
  };
  std::vector<RunCase> cases = {
      {"base / scalar", 1, KernelVariant::Scalar},
      {"base / optimized", 1, opt_variant},
      {"CA / scalar", steps, KernelVariant::Scalar},
      {"CA / optimized", steps, opt_variant},
  };
  std::size_t temporal_idx = 0, fused_wave_idx = 0;
  if (!spec_path) {
    temporal_idx = cases.size();
    cases.push_back({"CA / temporal (fused)", steps, KernelVariant::Temporal});
  }
  if (fuse > 1) {
    // The graph-rewrite analogue of the temporal kernel, but generic: the
    // fuse-ready builder already deepens ghosts for steps*fuse iterations
    // and rt::fuse_supersteps collapses each tile's window into one task.
    fused_wave_idx = cases.size();
    cases.push_back({"CA / fused-wavefront", steps, opt_variant, fuse});
  }

  Table table({"configuration", "kernel", "time ms", "GFLOP/s",
               "vs base/scalar", "exact"});
  std::vector<double> gflops(cases.size(), 0.0);
  std::vector<double> wall_ms(cases.size(), 0.0);
  bool all_exact = true;
  // --trace-analyze traces the first repetition of each configuration and
  // prints the causal summary (critical path, network share, overlap).
  const bool trace_analyze = options.get_bool("trace-analyze", false);
  std::shared_ptr<obs::TelemetryCollector> last_telemetry;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const RunCase& rc = cases[ci];
    stencil::DistConfig config;
    config.decomp = {tile, tile, nodes, nodes};
    config.steps = rc.steps;
    config.kernel = rc.kernel;
    config.fuse_depth = rc.fuse;
    config.scheduler = sched;
    bench::apply_telemetry_flags(config, options);
    double best_wall = 1e300;
    double flops = 0.0;
    bool exact = true;
    for (int rep = 0; rep < reps; ++rep) {
      config.trace = trace_analyze && rep == 0;
      const stencil::DistResult r = stencil::run_distributed(problem, config);
      best_wall = std::min(best_wall, r.stats.wall_time_s);
      flops = r.flops();
      if (r.telemetry) last_telemetry = r.telemetry;
      if (rep == 0) {
        exact = stencil::Grid2D::max_abs_diff(expected, r.grid) == 0.0;
        if (trace_analyze) {
          const obs::TraceAnalysis a = obs::analyze_dataflow(r.trace_events);
          std::cout << "  causal [" << rc.label << "]: critical path "
                    << Table::cell(a.critical_path_s * 1e3, 3) << " ms ("
                    << Table::cell(100.0 * a.network_share(), 1)
                    << "% network), overlap "
                    << Table::cell(100.0 * a.overlap_efficiency, 1) << "%\n";
        }
      }
    }
    wall_ms[ci] = best_wall * 1e3;
    gflops[ci] = flops / best_wall / 1e9;
    all_exact = all_exact && exact;
    table.add_row({rc.label, stencil::kernel_variant_name(rc.kernel),
                   Table::cell(wall_ms[ci], 1), Table::cell(gflops[ci], 2),
                   Table::cell(gflops[ci] / gflops[0], 2),
                   exact ? "yes" : "NO"});
    obs::Json row = obs::Json::object();
    row["configuration"] = obs::Json(rc.label);
    row["steps"] = obs::Json(rc.steps);
    row["fuse"] = obs::Json(rc.fuse);
    row["kernel"] = obs::Json(stencil::kernel_variant_name(rc.kernel));
    row["time_ms"] = obs::Json(wall_ms[ci]);
    row["gflops"] = obs::Json(gflops[ci]);
    row["exact"] = obs::Json(exact);
    report.add_result(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';
  bench::maybe_csv(table, options, "fig8_measured.csv");

  // Fig. 8's qualitative claim, in measured numbers: the CA advantage with
  // the scalar kernel (should be ~0) vs with the optimized kernel.
  const double ca_gain_scalar_pct = 100.0 * (gflops[2] / gflops[0] - 1.0);
  const double ca_gain_opt_pct = 100.0 * (gflops[3] / gflops[1] - 1.0);
  std::cout << "CA gain with scalar kernel:    " << ca_gain_scalar_pct
            << "%\n"
            << "CA gain with optimized kernel: " << ca_gain_opt_pct << "%\n";
  report.set_derived("ca_gain_scalar_pct", obs::Json(ca_gain_scalar_pct));
  report.set_derived("ca_gain_opt_pct", obs::Json(ca_gain_opt_pct));
  if (temporal_idx != 0) {
    const double ca_gain_fused_pct =
        100.0 * (gflops[temporal_idx] / gflops[1] - 1.0);
    std::cout << "CA gain with fused temporal:   " << ca_gain_fused_pct
              << "%\n";
    report.set_derived("ca_gain_fused_pct", obs::Json(ca_gain_fused_pct));
  }
  double fused_wave_gain_pct = 0.0;
  if (fused_wave_idx != 0) {
    fused_wave_gain_pct = 100.0 * (gflops[fused_wave_idx] / gflops[1] - 1.0);
    std::cout << "CA gain with fused wavefront:  " << fused_wave_gain_pct
              << "%  (steps " << steps << " x fuse " << fuse << " = "
              << steps * fuse << " iterations per exchange)\n";
    report.set_derived("ca_gain_fused_wavefront_pct",
                       obs::Json(fused_wave_gain_pct));
  }
  std::cout << "all runs bit-identical to serial: "
            << (all_exact ? "yes" : "NO") << "\n";
  report.set_derived("all_exact", obs::Json(all_exact));
  bench::note_telemetry(report, last_telemetry);
  bench::maybe_report(report, options, "fig8_measured_report.json");

  // CI regression gate (same exit-1 idiom as trace_analyze --gate-wire):
  // --gate-fused=R fails the run when the fused-wavefront gain over
  // base/optimized drops below R percent.
  const double gate_fused = options.get_double("gate-fused", 0.0);
  if (gate_fused > 0.0 && fused_wave_idx != 0 &&
      fused_wave_gain_pct < gate_fused) {
    std::cerr << "bench_fig8: fused-wavefront gain regressed: "
              << fused_wave_gain_pct << "% < required " << gate_fused
              << "%\n";
    return 1;
  }
  return all_exact ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  if (options.get_bool("measured", false)) {
    return run_measured(options);
  }
  bench::header("Fig. 8: GFLOP/s vs kernel-adjustment ratio (CA s=15)",
                "CA wins when kernel time is small: up to 57% (NaCL@16) and "
                "33% (Stampede2); no difference at ratio ~0.6-0.8");

  const int iters = static_cast<int>(options.get_int("iters", 100));
  const int steps = static_cast<int>(options.get_int("steps", 15));
  // --fuse=F projects the fused-wavefront rewrite on top of CA: one task
  // per tile per steps*F-iteration window, exchanges only at window
  // boundaries (rt::fuse_supersteps over the fuse-ready graph). F=1 off.
  const int fuse = static_cast<int>(options.get_int("fuse", 3));
  // --stencil= parameterizes the simulated sweep by any named spec (neighbor
  // count, stages, field planes all feed the analytic model).
  const spec::StencilSpec sim_spec = spec::spec_by_name(
      options.get_choice("stencil", "star5", spec::spec_names()));

  obs::RunReport report("bench_fig8_kernel_ratio");
  report.set_param("iters", obs::Json(iters));
  report.set_param("steps", obs::Json(steps));
  report.set_param("fuse", obs::Json(fuse));
  report.set_param("stencil", obs::Json(sim_spec.name));
  double best_gain_pct = 0.0;
  double best_fused_gain_pct = 0.0;

  struct System {
    sim::Machine machine;
    int n;
    int tile;
  };
  const System systems[] = {{sim::nacl(), 23040, 288},
                            {sim::stampede2(), 55296, 864}};

  for (const auto& sys : systems) {
    for (int side : {2, 4, 8}) {
      std::cout << sys.machine.name << ", " << side * side << " nodes:\n";
      sim::StencilSimParams black{sys.machine, sys.n, sys.tile, side,
                                  side, iters, 1, 1.0};
      black.stencil = sim_spec;
      const double base_full = sim::simulate_stencil(black).gflops;

      Table table({"ratio", "base GF/s", "CA GF/s", "CA gain %",
                   "CA+fuse GF/s", "fuse gain %", "base(ratio=1) GF/s"});
      for (double ratio : {0.2, 0.3, 0.4, 0.6, 0.8}) {
        sim::StencilSimParams base = black;
        base.ratio = ratio;
        sim::StencilSimParams ca = base;
        ca.steps = steps;
        sim::StencilSimParams cf = ca;
        cf.fuse = fuse;
        const auto rb = sim::simulate_stencil(base);
        const auto rc = sim::simulate_stencil(ca);
        const auto rf = sim::simulate_stencil(cf);
        const double gain_pct = 100.0 * (rc.gflops / rb.gflops - 1.0);
        const double fused_gain_pct = 100.0 * (rf.gflops / rb.gflops - 1.0);
        table.add_row({Table::cell(ratio, 1), Table::cell(rb.gflops, 1),
                       Table::cell(rc.gflops, 1), Table::cell(gain_pct, 1),
                       Table::cell(rf.gflops, 1),
                       Table::cell(fused_gain_pct, 1),
                       Table::cell(base_full, 1)});
        best_gain_pct = std::max(best_gain_pct, gain_pct);
        best_fused_gain_pct = std::max(best_fused_gain_pct, fused_gain_pct);
        obs::Json row = obs::Json::object();
        row["machine"] = obs::Json(sys.machine.name);
        row["nodes"] = obs::Json(side * side);
        row["ratio"] = obs::Json(ratio);
        row["base_gflops"] = obs::Json(rb.gflops);
        row["ca_gflops"] = obs::Json(rc.gflops);
        row["ca_gain_pct"] = obs::Json(gain_pct);
        row["ca_fused_gflops"] = obs::Json(rf.gflops);
        row["ca_fused_gain_pct"] = obs::Json(fused_gain_pct);
        row["messages"] = obs::Json(rc.sim.messages);
        row["bytes"] = obs::Json(rc.sim.message_bytes);
        row["fused_messages"] = obs::Json(rf.sim.messages);
        row["fused_bytes"] = obs::Json(rf.sim.message_bytes);
        report.add_result(std::move(row));
      }
      table.print(std::cout);
      std::cout << '\n';
      bench::maybe_csv(table, options,
                       "fig8_" + sys.machine.name + "_" +
                           std::to_string(side * side) + "n.csv");
    }
  }
  report.set_derived("best_ca_gain_pct", obs::Json(best_gain_pct));
  report.set_derived("best_ca_fused_gain_pct", obs::Json(best_fused_gain_pct));
  std::cout << "best CA gain:        " << best_gain_pct << "%\n"
            << "best CA+fused gain:  " << best_fused_gain_pct << "% (fuse "
            << fuse << ")\n";
  bench::maybe_report(report, options, "fig8_report.json");

  // Normalized gate document: the analytic model is machine-independent, so
  // the gain ratios are tight bands and the modeled wire traffic of the
  // canonical NaCL 16-node CA point is bit-exact.
  obs::BenchResult bench_doc("bench_fig8_kernel_ratio");
  bench_doc.set_context("iters", obs::Json(iters));
  bench_doc.set_context("steps", obs::Json(steps));
  bench_doc.set_context("fuse", obs::Json(fuse));
  bench_doc.set_context("stencil", obs::Json(sim_spec.name));
  bench_doc.add_ratio("best_ca_gain_pct", best_gain_pct, "higher", 5.0);
  bench_doc.add_ratio("best_ca_fused_gain_pct", best_fused_gain_pct,
                      "higher", 5.0);
  {
    sim::StencilSimParams gate{sim::nacl(), 23040, 288, 4, 4,
                               iters,       steps, 0.4};
    gate.stencil = sim_spec;
    const auto rc = sim::simulate_stencil(gate);
    gate.fuse = fuse;
    const auto rf = sim::simulate_stencil(gate);
    bench_doc.add_exact("ca_messages_nacl16", rc.sim.messages, "messages");
    bench_doc.add_exact("ca_bytes_nacl16",
                        static_cast<std::uint64_t>(rc.sim.message_bytes),
                        "bytes");
    bench_doc.add_exact("ca_fused_messages_nacl16", rf.sim.messages,
                        "messages");
    bench_doc.add_exact("ca_fused_bytes_nacl16",
                        static_cast<std::uint64_t>(rf.sim.message_bytes),
                        "bytes");
  }
  bench::maybe_bench_json(bench_doc, options,
                          "BENCH_bench_fig8_kernel_ratio.json");
  return 0;
}
