// Fig. 5: NetPIPE network performance — % of theoretical peak vs message
// size for NaCL (32 Gb/s IB QDR) and Stampede2 (100 Gb/s Omni-Path).
//
// Prints the analytic link-model curves for both machine presets (the curves
// the simulator uses) plus the measured in-memory transport curve of this
// host (characterising the substitution substrate). Shape to check: a few
// percent of peak at 256 B rising to 70-90% by 1 MB; the conclusions section
// leans on exactly this 20% -> 70% climb for CA's bigger messages.
#include "bench_common.hpp"
#include "net/netpipe.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Fig. 5: NetPIPE effective bandwidth vs message size",
                "theoretical peaks 32 Gb/s (NaCL) and 100 Gb/s (Stampede2); "
                "effective peaks ~27 and ~86 Gb/s; latency ~1 us");

  const auto sizes = net::netpipe_sizes(64, 16 * MiB);
  const auto nacl_curve = net::analytic_curve(net::nacl_link(), sizes);
  const auto s2_curve = net::analytic_curve(net::stampede2_link(), sizes);
  const auto host = net::measured_curve(
      net::netpipe_sizes(64, 4 * MiB),
      static_cast<int>(options.get_int("repeats", 16)));

  Table table({"size", "NaCL Gb/s", "NaCL %peak", "Stampede2 Gb/s",
               "Stampede2 %peak", "host-memcpy GB/s"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::string host_cell =
        i < host.size() ? Table::cell(host[i].bandwidth_Bps / 1e9, 2) : "-";
    table.add_row({format_bytes(sizes[i]),
                   Table::cell(to_gbit_per_s(nacl_curve[i].bandwidth_Bps), 2),
                   Table::cell(100.0 * nacl_curve[i].fraction_of_peak, 1),
                   Table::cell(to_gbit_per_s(s2_curve[i].bandwidth_Bps), 2),
                   Table::cell(100.0 * s2_curve[i].fraction_of_peak, 1),
                   host_cell});
  }
  table.print(std::cout);

  // The aggregation argument from the conclusions: a base-version halo
  // message vs a CA (s=15) halo message on each machine.
  std::cout << "\nCA message-aggregation effect (tile 288 on NaCL, 864 on "
               "Stampede2, doubles):\n";
  Table agg({"machine", "message", "bytes", "%peak"});
  const auto nacl = net::nacl_link();
  const auto s2 = net::stampede2_link();
  agg.add_row({"NaCL", "base band (1x288)", "2304",
               Table::cell(100.0 * nacl.fraction_of_peak(2304), 1)});
  agg.add_row({"NaCL", "CA band (15x288)", "34560",
               Table::cell(100.0 * nacl.fraction_of_peak(34560), 1)});
  agg.add_row({"Stampede2", "base band (1x864)", "6912",
               Table::cell(100.0 * s2.fraction_of_peak(6912), 1)});
  agg.add_row({"Stampede2", "CA band (15x864)", "103680",
               Table::cell(100.0 * s2.fraction_of_peak(103680), 1)});
  agg.print(std::cout);

  bench::maybe_csv(table, options, "fig5_netpipe.csv");
  return 0;
}
