// Ablations over the design choices DESIGN.md calls out.
//
//   A. Comm-thread software overhead sensitivity: how the base/CA crossover
//      moves as the per-message cost varies (the calibrated value is what
//      makes Fig. 8 reproduce; this shows the conclusion is robust in sign).
//   B. Boundary-task priority: scheduling boundary tiles first is what keeps
//      the comm pipeline fed; turning it off costs throughput at small
//      ratios.
//   C. Step-size tradeoff accounting: messages, bytes, redundant work, and
//      time as s grows (why s must be tuned, in numbers).
//   D. Dedicated comm thread vs inline sends in the REAL runtime (small
//      scale, correctness-preserving either way).
#include "bench_common.hpp"
#include "sim/models.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"
#include "support/units.hpp"

namespace {

using namespace repro;

void ablation_comm_overhead() {
  std::cout << "A. Comm-overhead sensitivity (NaCL, 16 nodes, ratio 0.2, "
               "CA s=15):\n";
  Table table({"comm overhead us", "base GF/s", "CA GF/s", "CA gain %"});
  for (double us : {0.0, 5.0, 10.0, 24.0, 50.0}) {
    sim::Machine m = sim::nacl();
    m.comm_overhead_s = us * 1e-6;
    sim::StencilSimParams base{m, 23040, 288, 4, 4, 40, 1, 0.2};
    sim::StencilSimParams ca = base;
    ca.steps = 15;
    const double b = sim::simulate_stencil(base).gflops;
    const double c = sim::simulate_stencil(ca).gflops;
    table.add_row({Table::cell(us, 1), Table::cell(b, 1), Table::cell(c, 1),
                   Table::cell(100.0 * (c / b - 1.0), 1)});
  }
  table.print(std::cout);
}

void ablation_priority() {
  std::cout << "\nB. Boundary-first priority (NaCL, 16 nodes, CA s=15):\n";
  Table table({"ratio", "with priority GF/s", "without GF/s", "delta %"});
  for (double ratio : {0.2, 0.4, 1.0}) {
    sim::StencilSimParams p{sim::nacl(), 23040, 288, 4, 4, 40, 15, ratio};
    const double with = sim::simulate_stencil(p).gflops;
    sim::StencilSimParams q = p;
    q.boundary_priority = false;
    const double without = sim::simulate_stencil(q).gflops;
    table.add_row({Table::cell(ratio, 1), Table::cell(with, 1),
                   Table::cell(without, 1),
                   Table::cell(100.0 * (with / without - 1.0), 1)});
  }
  table.print(std::cout);
}

void ablation_stepsize_accounting() {
  std::cout << "\nC. Step-size tradeoff accounting (NaCL, 16 nodes, ratio "
               "0.2, 60 iters):\n";
  Table table({"s", "messages", "MB on wire", "redundant work %", "GF/s"});
  for (int s : {1, 2, 5, 10, 15, 25, 40}) {
    sim::StencilSimParams p{sim::nacl(), 23040, 288, 4, 4, 60, s, 0.2};
    const auto out = sim::simulate_stencil(p);
    table.add_row({Table::cell(static_cast<long long>(s)),
                   Table::cell(static_cast<long long>(out.sim.messages)),
                   Table::cell(out.sim.message_bytes / 1e6, 1),
                   Table::cell(100.0 * out.redundant_fraction, 2),
                   Table::cell(out.gflops, 1)});
  }
  table.print(std::cout);
}

void ablation_comm_thread_real() {
  std::cout << "\nD. Real runtime: dedicated comm thread vs inline sends "
               "(N=768, 2x2 nodes, CA s=4, 10 iters):\n";
  Table table({"mode", "time ms", "messages", "max |diff| vs other mode"});
  const stencil::Problem problem = stencil::random_problem(768, 768, 10);
  stencil::DistResult results[2] = {
      stencil::DistResult{stencil::Grid2D(1, 1), {}, {}, {}, 0, 0},
      stencil::DistResult{stencil::Grid2D(1, 1), {}, {}, {}, 0, 0}};
  int idx = 0;
  for (bool dedicated : {true, false}) {
    stencil::DistConfig config;
    config.decomp = {96, 96, 2, 2};
    config.steps = 4;
    config.workers_per_rank = 2;
    config.dedicated_comm_thread = dedicated;
    results[idx] = run_distributed(problem, config);
    ++idx;
  }
  const double diff =
      stencil::Grid2D::max_abs_diff(results[0].grid, results[1].grid);
  for (int i = 0; i < 2; ++i) {
    table.add_row({i == 0 ? "dedicated" : "inline",
                   Table::cell(results[i].stats.wall_time_s * 1e3, 1),
                   Table::cell(static_cast<long long>(results[i].stats.messages)),
                   Table::cell(diff, 17)});
  }
  table.print(std::cout);
}

void ablation_aggregation_real() {
  std::cout << "\nE. Real runtime: per-destination message aggregation "
               "(N=768, 2x2 nodes, 12 iters):\n";
  Table table({"version", "aggregation", "messages", "bytes", "max|err|"});
  const stencil::Problem problem = stencil::random_problem(768, 768, 12);
  const stencil::Grid2D expected = solve_serial(problem);
  for (int steps : {1, 2, 4}) {
    for (bool aggregate : {false, true}) {
      stencil::DistConfig config;
      config.decomp = {96, 96, 2, 2};
      config.steps = steps;
      config.workers_per_rank = 2;
      config.aggregate_messages = aggregate;
      const stencil::DistResult r = run_distributed(problem, config);
      table.add_row({(steps == 1 ? "base" : "CA s=" + std::to_string(steps)),
                     aggregate ? "on" : "off",
                     Table::cell(static_cast<long long>(r.stats.messages)),
                     Table::cell(static_cast<long long>(r.stats.bytes)),
                     Table::cell(stencil::Grid2D::max_abs_diff(expected,
                                                               r.grid), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "(aggregation collapses the CA corner+band sends to a node "
               "into one message — the fix for small-s message blowup)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  (void)options;
  bench::header("Ablations: design-choice sensitivity",
                "comm-thread cost, boundary priority, step-size tradeoffs, "
                "dedicated vs inline communication, message aggregation");
  ablation_comm_overhead();
  ablation_priority();
  ablation_stepsize_accounting();
  ablation_comm_thread_real();
  ablation_aggregation_real();
  return 0;
}
