// Conclusions-section projection: what happens as memory bandwidth outruns
// the network.
//
// "The memory bandwidth is expected to have around 50% improvement, but the
// improvement of network latency will remain modest ... if the workload on
// each node can efficiently utilize the full memory bandwidth then it would
// become, in all likelihood, network-bound and the implementation variant
// based on communication-avoiding approach shows a distinct advantage."
//
// We scale the machine's memory system (and hence the stencil kernel rate)
// by a factor while holding the interconnect fixed, and watch the base/CA
// gap open at FULL kernel ratio — no artificial kernel tuning, just faster
// memory, exactly the future the paper describes. A Summit-like node
// (multi-GPU-class bandwidth, same-latency network) is included as the
// extreme point.
#include "bench_common.hpp"
#include "sim/models.hpp"
#include "support/units.hpp"

namespace {

repro::sim::Machine scaled_memory(repro::sim::Machine base, double factor) {
  base.name += "x" + repro::format_double(factor, 1);
  base.node_stream_bw_Bps *= factor;
  base.core_stream_bw_Bps *= factor;
  base.node_stencil_gflops *= factor;  // memory-bound kernel scales with BW
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Exascale projection: faster memory, same network",
                "memory BW +50% expected, network latency ~flat => stencils "
                "go network-bound and CA wins without kernel tuning");

  const int iters = static_cast<int>(options.get_int("iters", 60));
  // --fuse=F projects the fused-wavefront rewrite at scale: exchanges every
  // steps*F iterations and one runtime task per tile per window. As memory
  // outruns the network the fused column should pull further ahead of plain
  // CA — per-message latency is what fusing amortizes.
  const int fuse = static_cast<int>(options.get_int("fuse", 3));

  for (const auto& base_machine : {sim::nacl(), sim::stampede2()}) {
    std::cout << base_machine.name
              << " (N/tile as in Fig. 7), 64 nodes, kernel ratio 1.0:\n";
    Table table({"memory BW", "base GF/s", "CA s=15 GF/s", "CA gain %",
                 "CA+fuse GF/s", "fuse gain %"});
    const int n = base_machine.name == "NaCL" ? 23040 : 55296;
    const int tile = base_machine.name == "NaCL" ? 288 : 864;
    for (double factor : {1.0, 1.5, 2.0, 4.0, 8.0}) {
      const sim::Machine machine = scaled_memory(base_machine, factor);
      sim::StencilSimParams base{machine, n, tile, 8, 8, iters, 1, 1.0};
      sim::StencilSimParams ca = base;
      ca.steps = 15;
      sim::StencilSimParams cf = ca;
      cf.fuse = fuse;
      const double b = sim::simulate_stencil(base).gflops;
      const double c = sim::simulate_stencil(ca).gflops;
      const double f = sim::simulate_stencil(cf).gflops;
      table.add_row({Table::cell(factor, 1) + "x", Table::cell(b, 1),
                     Table::cell(c, 1),
                     Table::cell(100.0 * (c / b - 1.0), 1),
                     Table::cell(f, 1),
                     Table::cell(100.0 * (f / b - 1.0), 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // Summit-like extreme: ~5.4 TB/s aggregate HBM per node (6 GPUs x 900
  // GB/s, per the conclusions), EDR-class network with ~1 us latency.
  std::cout << "Summit-like node (5.4 TB/s memory, 100 Gb/s-class network), "
               "64 nodes:\n";
  sim::Machine summit = sim::stampede2();
  summit.name = "Summit-like";
  const double scale = 5400e9 / summit.node_stream_bw_Bps;
  summit.node_stream_bw_Bps = 5400e9;
  summit.node_stencil_gflops *= scale;
  Table table({"version", "GF/s", "% of compute-bound peak"});
  const double peak = summit.node_stencil_gflops * 64.0;
  sim::StencilSimParams base{summit, 55296, 864, 8, 8, iters, 1, 1.0};
  sim::StencilSimParams ca = base;
  ca.steps = 15;
  sim::StencilSimParams cf = ca;
  cf.fuse = fuse;
  const double b = sim::simulate_stencil(base).gflops;
  const double c = sim::simulate_stencil(ca).gflops;
  const double f = sim::simulate_stencil(cf).gflops;
  table.add_row({"base", Table::cell(b, 1), Table::cell(100.0 * b / peak, 1)});
  table.add_row({"CA s=15", Table::cell(c, 1),
                 Table::cell(100.0 * c / peak, 1)});
  table.add_row({"CA s=15 fuse " + std::to_string(fuse), Table::cell(f, 1),
                 Table::cell(100.0 * f / peak, 1)});
  table.print(std::cout);
  std::cout << "\nCA advantage at Summit-like bandwidth: "
            << Table::cell(100.0 * (c / b - 1.0), 1) << "%\n"
            << "CA+fused advantage at Summit-like bandwidth: "
            << Table::cell(100.0 * (f / b - 1.0), 1) << "%\n";
  return 0;
}
