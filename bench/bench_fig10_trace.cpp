// Fig. 10: profiling traces — base vs CA PaRSEC on one node of 16 (NaCL,
// kernel ratio 0.4, 11 compute threads).
//
// Two renditions:
//   1. DES at paper scale (N=23040, tile 288, 16 NaCL nodes): per-node
//      occupancy, median boundary/interior task durations, message counts.
//      Shapes to check: CA has higher occupancy and slightly longer kernels
//      (paper: base median 136 vs CA 153 time units, yet CA 14% faster).
//   2. The real task runtime on this host at reduced scale, with its tracer
//      enabled: occupancy report and an ASCII Gantt strip per worker — the
//      console rendition of the paper's trace plot.
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "obs/trace_analysis.hpp"
#include "sim/models.hpp"
#include "stencil/dist_stencil.hpp"
#include "support/stats.hpp"

namespace {

using namespace repro;

void simulated_part(const Options& options) {
  const int iters = static_cast<int>(options.get_int("iters", 60));
  const double ratio = options.get_double("ratio", 0.3);
  std::cout << "Simulated trace at paper scale (NaCL, 16 nodes, ratio "
            << ratio << ", " << iters << " iters).\n"
            << "Note: our calibrated model places the base/CA crossover near "
               "ratio 0.3;\nthe paper observed the same phenomenon at ratio "
               "0.4 on the physical cluster.\n";

  Table table({"version", "GF/s", "median boundary us", "median interior us",
               "occupancy node0 %", "messages"});
  double base_gf = 0.0;
  for (int steps : {1, 15}) {
    sim::StencilSimParams p{sim::nacl(), 23040, 288, 4, 4, iters, steps,
                            ratio};
    const auto out = sim::simulate_stencil(p, /*trace=*/true);
    std::vector<double> boundary, interior;
    for (const auto& iv : out.sim.trace) {
      if (iv.node != 0) continue;
      if (iv.klass == sim::kKlassBoundary) {
        boundary.push_back(iv.end_s - iv.begin_s);
      } else if (iv.klass == sim::kKlassInterior) {
        interior.push_back(iv.end_s - iv.begin_s);
      }
    }
    if (steps == 1) base_gf = out.gflops;
    table.add_row({steps == 1 ? "base" : "CA s=15", Table::cell(out.gflops, 1),
                   Table::cell(median(boundary) * 1e6, 1),
                   Table::cell(median(interior) * 1e6, 1),
                   Table::cell(100.0 * out.sim.occupancy(
                                   0, sim::nacl().compute_workers()), 1),
                   Table::cell(static_cast<long long>(out.sim.messages))});
    if (steps == 15) {
      std::cout << "  CA vs base: " << Table::cell(
          100.0 * (out.gflops / base_gf - 1.0), 1)
                << "% faster (paper: 14% at ratio 0.4)\n";
    }
  }
  table.print(std::cout);
}

int real_part(const Options& options) {
  const int n = static_cast<int>(options.get_int("n", 512));
  const int iters = static_cast<int>(options.get_int("real-iters", 12));
  // --channel=persistent reruns the same experiment over persistent halo
  // channels (pre-registered route buffers, partitioned fragment sends).
  // The trace CSVs get distinct names so trace_analyze --diff can gate the
  // persistent wire path against the default one in CI.
  const bool persistent =
      options.get_choice("channel", "default", {"default", "persistent"}) ==
      "persistent";
  // --fuse=F adds a third traced leg: the CA graph rewritten by
  // rt::fuse_supersteps into steps*F-iteration windows. Fusing requires
  // kernel_ratio == 1, so the leg runs at full kernel time; its trace CSV
  // (fig10_fused.csv) diffs against the CA leg with trace_analyze, where
  // the "fused depth" row and the collapsed task count are visible.
  const int fuse = static_cast<int>(options.get_int("fuse", 1));
  std::cout << "\nReal taskrt trace on this host (N=" << n << ", 2x2 virtual "
            << "nodes, 2 workers each, ratio 0.4, " << iters << " iters, "
            << (persistent ? "persistent" : "default") << " channel).\n"
            << "Note: all virtual nodes timeshare this host's "
            << std::thread::hardware_concurrency()
            << " hardware thread(s); occupancy percentages reflect that "
               "oversubscription, not runtime quality.\n";

  Table causal({"version", "crit path ms", "compute %", "network %",
                "runtime %", "cp msgs", "overlap %"});
  obs::TraceAnalysis base_analysis;
  struct Leg {
    const char* label;
    int steps;
    int fuse;
  };
  std::vector<Leg> legs = {{"base", 1, 1}, {"CA s=4", 4, 1}};
  if (fuse > 1) {
    legs.push_back({"CA s=4 fused", 4, fuse});
  }
  obs::BenchResult bench_doc("bench_fig10_trace");
  bench_doc.set_context("n", obs::Json(n));
  bench_doc.set_context("iters", obs::Json(iters));
  bench_doc.set_context("channel",
                        obs::Json(persistent ? "persistent" : "default"));
  bench_doc.set_context("fuse", obs::Json(fuse));
  for (const Leg& leg : legs) {
    const int steps = leg.steps;
    stencil::DistConfig config;
    config.decomp = {n / 8, n / 8, 2, 2};
    config.steps = steps;
    // Fused wavefronts require the full kernel (ratio 1); the first two
    // legs keep the paper's ratio-0.4 tuned-kernel setting.
    config.kernel_ratio = leg.fuse > 1 ? 1.0 : 0.4;
    config.fuse_depth = leg.fuse;
    config.workers_per_rank = 2;
    config.trace = true;
    config.persistent = persistent;
    // Live telemetry (--telemetry / --telemetry-dump=<path>): the fig-10
    // run is the canonical repro_top demo — attach `repro_top
    // --file=<path>` in another terminal while this leg executes.
    bench::apply_telemetry_flags(config, options);
    const stencil::Problem problem = stencil::laplace_problem(n, iters);
    const stencil::DistResult result = run_distributed(problem, config);
    if (result.telemetry) {
      for (const obs::TelemetryEvent& event : result.telemetry->events()) {
        std::cout << "telemetry: [" << event.detector << "] rank "
                  << event.rank << " @ superstep " << event.superstep
                  << " value=" << event.value << "\n";
      }
    }

    if (persistent && obs::kEnabled) {
      // The zero-allocation steady-state contract, enforced as an exit code
      // so CI can gate on it: after warmup every fragment must reuse a
      // registered slot.
      const double steady =
          result.metrics->counter("net_persistent_steady_allocs_total", {})
              ->value();
      if (steady != 0.0) {
        std::cerr << "FAIL: net_persistent_steady_allocs_total = " << steady
                  << " (expected 0: steady state must not allocate)\n";
        return 1;
      }
    }

    const rt::TraceReport report =
        rt::analyze_trace(result.trace_events, config.workers_per_rank);
    std::cout << "\n-- " << leg.label << ": " << result.stats.messages
              << " messages, " << result.stats.bytes << " bytes --\n";
    Table table({"klass", "count", "median us"});
    for (const auto& [klass, med] : report.median_duration_by_klass) {
      table.add_row({klass,
                     Table::cell(static_cast<long long>(
                         report.count_by_klass.at(klass))),
                     Table::cell(med * 1e6, 1)});
    }
    table.print(std::cout);
    std::cout << "occupancy by rank:";
    for (const auto& [rank, occ] : report.occupancy_by_rank) {
      std::cout << "  r" << rank << "=" << Table::cell(100.0 * occ, 1) << "%";
    }
    std::cout << '\n';
    rt::print_ascii_gantt(result.trace_events, std::cout, 96);

    if (options.has("csv")) {
      const std::string prefix =
          persistent ? "fig10_persistent" : "fig10";
      const std::string path =
          prefix + (leg.fuse > 1 ? "_fused.csv"
                                 : (steps == 1 ? "_base.csv" : "_ca.csv"));
      std::ofstream out(path);
      rt::write_trace_csv(result.trace_events, out);
      std::cout << "(wrote " << path << ")\n";
    }

    // Causal analysis of the same stream: the headline numbers Fig. 10's
    // occupancy strips only hint at.
    const obs::TraceAnalysis a = obs::analyze_dataflow(result.trace_events);
    // Gate metrics: wire traffic is graph-determined (hard-fails the perf
    // gate on any drift), the critical path is wall-clock (warn-only band).
    const std::string leg_key =
        leg.fuse > 1 ? "fused" : (steps == 1 ? "base" : "ca");
    bench_doc.add_exact(leg_key + "_messages", result.stats.messages,
                        "messages");
    bench_doc.add_exact(leg_key + "_bytes", result.stats.bytes, "bytes");
    bench_doc.add_time(leg_key + "_critical_path_s", a.critical_path_s,
                       50.0);
    const double cp = a.critical_path_s > 0.0 ? a.critical_path_s : 1.0;
    causal.add_row({leg.label, Table::cell(a.critical_path_s * 1e3, 3),
                    Table::cell(100.0 * a.cp_compute_s / cp, 1),
                    Table::cell(100.0 * a.cp_network_s / cp, 1),
                    Table::cell(100.0 * a.cp_runtime_s / cp, 1),
                    Table::cell(static_cast<long long>(a.cp_messages)),
                    Table::cell(100.0 * a.overlap_efficiency, 1)});
    if (steps == 1) base_analysis = a;

    if (steps == 4 && leg.fuse == 1 && options.has("report")) {
      std::string path = options.get_string("report", "");
      if (path.empty() || path == "true") path = "fig10_trace.json";
      obs::Json params = obs::Json::object();
      params["n"] = n;
      params["iters"] = iters;
      params["steps"] = steps;
      params["kernel_ratio"] = 0.4;
      params["base_critical_path_s"] = base_analysis.critical_path_s;
      params["base_network_share"] = base_analysis.network_share();
      obs::Json doc =
          obs::make_trace_analysis_report("fig10_ca", a, std::move(params));
      std::ofstream out(path);
      out << doc.dump(2) << "\n";
      std::cout << "(wrote " << path << ")\n";
    }
  }

  bench::maybe_bench_json(bench_doc, options, "BENCH_bench_fig10_trace.json");

  std::cout << "\nCausal analysis (critical path through the executed "
               "DAG):\n";
  causal.print(std::cout);
  std::cout << "Shapes to check: CA's critical path is shorter and its "
               "network share lower\n(fewer halo hops on the path; see "
               "tools/trace_analyze for the diff workflow).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  bench::header("Fig. 10: execution trace, base vs CA",
                "CA achieves higher CPU occupancy despite longer kernels "
                "(base median 136 vs CA 153) and runs 14% faster at ratio "
                "0.4 on 16 NaCL nodes");
  simulated_part(options);
  return real_part(options);
}
