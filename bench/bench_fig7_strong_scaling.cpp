// Fig. 7: strong-scaling speedup over single-node base-PaRSEC.
//
// NaCL: N = 23040, tile 288; Stampede2: N = 55296, tile 864; 100 iterations;
// CA step size 15; square node grids of 1, 4, 16, 64 nodes.
//
// Shapes to check (paper section VI-C):
//   * all three implementations scale well;
//   * PaRSEC versions reach ~2x the PETSc speedup (CSR index traffic);
//   * base and CA are "almost indistinguishable" at full kernel time.
#include <memory>

#include "bench_common.hpp"
#include "obs/trace_analysis.hpp"
#include "sim/models.hpp"
#include "spec/stencil_spec.hpp"
#include "spmv/petsc_like.hpp"
#include "stencil/dist_stencil.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Fig. 7: strong scaling speedup (vs 1-node base-PaRSEC)",
                "PaRSEC ~2x PETSc everywhere; base ~= CA; near-linear "
                "scaling to 64 nodes");

  obs::RunReport report("bench_fig7_strong_scaling");

  const int iters = static_cast<int>(options.get_int("iters", 100));
  const int steps = static_cast<int>(options.get_int("steps", 15));
  // --fuse=F (opt-in, default off) adds fused-wavefront rows: the CA graph
  // rewritten by rt::fuse_supersteps so each tile runs steps*F iterations
  // per exchange. Simulated rows get a CA+fuse column; the host section
  // gains a real fused run. F=1 keeps the paper's figure byte-identical.
  const int fuse = static_cast<int>(options.get_int("fuse", 1));
  // Optional lossy-link model: every message pays the expected retransmission
  // cost of fault::ReliableChannel at this drop rate (0 = exact paper model).
  sim::LossModel loss;
  loss.loss_rate = options.get_double("loss", 0.0);
  // --stencil= sweeps the figure over any named spec (spec/stencil_spec.hpp).
  // The default star5 keeps the paper configuration: the host rows then run
  // the classic hard-wired 5-point path, bit-identical to the pre-spec bench.
  const std::string stencil_name =
      options.get_choice("stencil", "star5", spec::spec_names());
  const spec::StencilSpec stencil_spec = spec::spec_by_name(stencil_name);
  const bool spec_path = stencil_name != "star5";
  report.set_param("iters", obs::Json(iters));
  report.set_param("steps", obs::Json(steps));
  report.set_param("fuse", obs::Json(fuse));
  report.set_param("loss", obs::Json(loss.loss_rate));
  report.set_param("stencil", obs::Json(stencil_name));

  struct System {
    sim::Machine machine;
    int n;
    int tile;
  };
  const System systems[] = {{sim::nacl(), 23040, 288},
                            {sim::stampede2(), 55296, 864}};

  for (const auto& sys : systems) {
    std::cout << sys.machine.name << " (N=" << sys.n << ", tile=" << sys.tile
              << ", " << iters << " iters, CA s=" << steps << ")\n";
    sim::StencilSimParams one{sys.machine, sys.n, sys.tile, 1, 1,
                              iters, 1, 1.0};
    one.loss = loss;
    one.stencil = stencil_spec;
    const double t1 = sim::simulate_stencil(one).time_s;

    std::vector<std::string> cols = {"nodes",         "PETSc GF/s",
                                     "base GF/s",     "CA GF/s",
                                     "PETSc speedup", "base speedup",
                                     "CA speedup"};
    if (fuse > 1) {
      cols.push_back("CA+fuse GF/s");
      cols.push_back("CA+fuse speedup");
    }
    Table table(cols);
    for (int side : {1, 2, 4, 8}) {
      const int nodes = side * side;
      sim::StencilSimParams base{sys.machine, sys.n, sys.tile, side, side,
                                 iters, 1, 1.0};
      base.loss = loss;
      base.stencil = stencil_spec;
      sim::StencilSimParams ca = base;
      ca.steps = steps;
      const auto rb = sim::simulate_stencil(base);
      const auto rc = sim::simulate_stencil(ca);
      const sim::PetscSimParams pp{sys.machine, sys.n, nodes, iters};
      const auto rp = sim::simulate_petsc(pp);
      std::vector<std::string> cells = {
          Table::cell(static_cast<long long>(nodes)),
          Table::cell(rp.gflops, 1),
          Table::cell(rb.gflops, 1),
          Table::cell(rc.gflops, 1),
          Table::cell(t1 / rp.time_s, 2),
          Table::cell(t1 / rb.time_s, 2),
          Table::cell(t1 / rc.time_s, 2)};
      obs::Json row = obs::Json::object();
      if (fuse > 1) {
        sim::StencilSimParams cf = ca;
        cf.fuse = fuse;
        const auto rf = sim::simulate_stencil(cf);
        cells.push_back(Table::cell(rf.gflops, 1));
        cells.push_back(Table::cell(t1 / rf.time_s, 2));
        row["ca_fused_gflops"] = obs::Json(rf.gflops);
        row["ca_fused_speedup"] = obs::Json(t1 / rf.time_s);
      }
      table.add_row(std::move(cells));
      row["machine"] = obs::Json(sys.machine.name);
      row["N"] = obs::Json(sys.n);
      row["tile"] = obs::Json(sys.tile);
      row["nodes"] = obs::Json(nodes);
      row["petsc_gflops"] = obs::Json(rp.gflops);
      row["base_gflops"] = obs::Json(rb.gflops);
      row["ca_gflops"] = obs::Json(rc.gflops);
      row["ca_speedup"] = obs::Json(t1 / rc.time_s);
      row["messages"] = obs::Json(rc.sim.messages);
      row["bytes"] = obs::Json(rc.sim.message_bytes);
      report.add_result(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
    bench::maybe_csv(table, options, "fig7_" + sys.machine.name + ".csv");
  }

  // Real head-to-head on this host at reduced scale: the same three
  // implementations executed for real (PETSc-like rank threads vs the task
  // runtime), with their measured traffic. Wall-clock favors nobody on an
  // oversubscribed host; the traffic columns show the structural story.
  const int n = static_cast<int>(options.get_int("host-n", 1024));
  const int host_iters = static_cast<int>(options.get_int("host-iters", 8));
  // --kernel= selects the compute-kernel variant for the task-runtime rows
  // (scalar reproduces the paper's unoptimized kernel; see kernel_opt.hpp).
  const stencil::KernelVariant host_kernel = stencil::parse_kernel_variant(
      options.get_choice("kernel", "scalar",
                         {"scalar", "vector", "blocked", "temporal"}));
  report.set_param("kernel",
                   obs::Json(stencil::kernel_variant_name(host_kernel)));
  // --sched= selects the ready-queue discipline for the task-runtime rows
  // (priority = shared heap; steal = per-worker deques, see scheduler.hpp).
  const rt::SchedPolicy host_sched = rt::parse_sched_policy(
      options.get_choice("sched", "priority",
                         {"priority", "fifo", "lifo", "steal"}));
  report.set_param("sched", obs::Json(rt::sched_policy_name(host_sched)));
  std::cout << "Real execution on this host (N=" << n << ", " << host_iters
            << " iters, 4 virtual nodes / 4 SpMV ranks, "
            << stencil::kernel_variant_name(host_kernel) << " kernel, "
            << rt::sched_policy_name(host_sched) << " scheduler):\n";
  // star5 stays on the classic hard-wired problem so the default rows remain
  // byte-identical to the pre-spec bench; other specs run the compiled
  // atomic-stage program.
  const stencil::Problem problem =
      spec_path ? stencil::spec_problem(stencil_spec, n, n, host_iters)
                : stencil::laplace_problem(n, host_iters);
  // Every real execution below shares one registry; the report carries its
  // snapshot so the host run is reproducible from the JSON alone.
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  Table real({"implementation", "time ms", "messages", "MB moved"});
  if (spec_path) {
    std::cout << "  (skipping PETSc-like SpMV row: its CSR assembly encodes "
                 "the 5-point stencil only)\n";
  } else {
    const auto r = spmv::run_petsc_like(problem, 4, metrics);
    real.add_row({"PETSc-like SpMV", Table::cell(r.wall_time_s * 1e3, 1),
                  Table::cell(static_cast<long long>(r.messages)),
                  Table::cell(static_cast<double>(r.bytes) / 1e6, 2)});
    obs::Json row = obs::Json::object();
    row["machine"] = obs::Json("host");
    row["implementation"] = obs::Json("petsc_like");
    row["time_ms"] = obs::Json(r.wall_time_s * 1e3);
    row["messages"] = obs::Json(r.messages);
    row["bytes"] = obs::Json(r.bytes);
    report.add_result(std::move(row));
  }
  // --trace-analyze traces the host runs and prints the causal summary
  // (critical path, network share, overlap) beside the traffic columns.
  const bool trace_analyze = options.get_bool("trace-analyze", false);
  struct HostCase {
    const char* label;
    const char* impl;
    const char* tag;
    int steps;
    int fuse;
  };
  std::vector<HostCase> host_cases = {
      {"base taskrt", "base_taskrt", "base", 1, 1},
      {"CA taskrt (s=4)", "ca_taskrt", "ca", 4, 1},
  };
  if (fuse > 1) {
    // The fused-wavefront real run: the temporal kernel stays off (fusing is
    // the graph rewrite, not a kernel), so it composes with --kernel/--sched.
    host_cases.push_back(
        {"CA+fused taskrt", "ca_fused_taskrt", "ca_fused", 4, fuse});
  }
  std::shared_ptr<obs::TelemetryCollector> last_telemetry;
  for (const HostCase& hc : host_cases) {
    stencil::DistConfig config;
    config.decomp = {n / 8, n / 8, 2, 2};
    config.steps = hc.steps;
    config.fuse_depth = hc.fuse;
    config.workers_per_rank = 2;
    config.kernel = host_kernel;
    config.scheduler = host_sched;
    config.metrics = metrics;
    config.trace = trace_analyze;
    bench::apply_telemetry_flags(config, options);
    const auto r = run_distributed(problem, config);
    if (r.telemetry) last_telemetry = r.telemetry;
    real.add_row({hc.label, Table::cell(r.stats.wall_time_s * 1e3, 1),
                  Table::cell(static_cast<long long>(r.stats.messages)),
                  Table::cell(static_cast<double>(r.stats.bytes) / 1e6, 2)});
    obs::Json row = obs::Json::object();
    row["machine"] = obs::Json("host");
    row["implementation"] = obs::Json(hc.impl);
    row["steps"] = obs::Json(hc.steps);
    row["fuse"] = obs::Json(hc.fuse);
    row["time_ms"] = obs::Json(r.stats.wall_time_s * 1e3);
    row["messages"] = obs::Json(r.stats.messages);
    row["bytes"] = obs::Json(r.stats.bytes);
    report.add_result(std::move(row));
    if (trace_analyze) {
      const obs::TraceAnalysis a = obs::analyze_dataflow(r.trace_events);
      const std::string tag = hc.tag;
      std::cout << "  causal " << tag << ": critical path "
                << Table::cell(a.critical_path_s * 1e3, 3) << " ms ("
                << Table::cell(100.0 * a.network_share(), 1)
                << "% network), overlap "
                << Table::cell(100.0 * a.overlap_efficiency, 1) << "%\n";
      report.set_derived(tag + "_critical_path_s",
                         obs::Json(a.critical_path_s));
      report.set_derived(tag + "_network_share",
                         obs::Json(a.network_share()));
      report.set_derived(tag + "_overlap_efficiency",
                         obs::Json(a.overlap_efficiency));
    }
  }
  real.print(std::cout);

  report.set_param("host_n", obs::Json(n));
  report.set_param("host_iters", obs::Json(host_iters));
  report.add_metrics(*metrics);
  if constexpr (obs::kEnabled) {
    const obs::MetricsSnapshot snap = metrics->snapshot();
    report.set_derived("host_messages_total",
                       obs::Json(snap.counter_total("net_messages_total")));
    report.set_derived("host_bytes_total",
                       obs::Json(snap.counter_total("net_bytes_total")));
    report.set_derived("host_tasks_executed_total",
                       obs::Json(snap.counter_total("rt_tasks_executed_total")));
  }
  bench::note_telemetry(report, last_telemetry);
  bench::maybe_report(report, options, "fig7_report.json");
  return 0;
}
