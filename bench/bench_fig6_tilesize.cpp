// Fig. 6: shared-memory base-PaRSEC GFLOP/s vs tile size.
//
// Two parts:
//   1. Model curves for the paper's machines — NaCL, N = 20k (plateau ~11
//      GFLOP/s at tiles 200-300) and Stampede2, N = 27k (~43.5 GFLOP/s at
//      tiles 400-2000).
//   2. A real single-node run of the actual task runtime on this host with a
//      scaled-down grid, sweeping tile sizes, to show the same
//      overhead-vs-tile-size shape on live hardware.
#include "bench_common.hpp"
#include "sim/models.hpp"
#include "stencil/dist_stencil.hpp"
#include "support/timing.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Fig. 6: single-node GFLOP/s vs tile size",
                "NaCL N=20k peaks ~11 GFLOP/s at tiles 200-300; Stampede2 "
                "N=27k ~43.5 GFLOP/s at tiles 400-2000");

  {
    Table table({"tile", "NaCL model GF/s (N=20k)"});
    for (int tile : {50, 100, 150, 200, 250, 288, 300, 400, 500, 700, 1000}) {
      table.add_row({Table::cell(static_cast<long long>(tile)),
                     Table::cell(sim::single_node_gflops_model(sim::nacl(),
                                                               20000, tile))});
    }
    table.print(std::cout);
    bench::maybe_csv(table, options, "fig6_nacl.csv");
  }
  std::cout << '\n';
  {
    Table table({"tile", "Stampede2 model GF/s (N=27k)"});
    for (int tile : {100, 200, 400, 600, 864, 1000, 1500, 2000, 2500, 3000}) {
      table.add_row({Table::cell(static_cast<long long>(tile)),
                     Table::cell(sim::single_node_gflops_model(
                         sim::stampede2(), 27000, tile))});
    }
    table.print(std::cout);
  }

  // Real execution on this host: one virtual node, all local exchanges.
  const int n = static_cast<int>(options.get_int("n", 2048));
  const int iters = static_cast<int>(options.get_int("iters", 4));
  const int workers = static_cast<int>(options.get_int("workers", 2));
  std::cout << "\nReal taskrt run on this host (N=" << n << ", " << iters
            << " iterations, " << workers << " workers, 1 virtual node):\n";
  Table real({"tile", "GF/s", "tasks", "time ms"});
  const stencil::Problem problem = stencil::laplace_problem(n, iters);
  for (int tile : {64, 128, 256, 512, 1024}) {
    if (tile > n) continue;
    stencil::DistConfig config;
    config.decomp = {tile, tile, 1, 1};
    config.steps = 1;
    config.workers_per_rank = workers;
    const stencil::DistResult result = run_distributed(problem, config);
    real.add_row({Table::cell(static_cast<long long>(tile)),
                  Table::cell(result.flops() / result.stats.wall_time_s / 1e9),
                  Table::cell(static_cast<long long>(result.stats.tasks_executed)),
                  Table::cell(result.stats.wall_time_s * 1e3, 1)});
  }
  real.print(std::cout);
  return 0;
}
