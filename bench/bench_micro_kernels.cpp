// Microbenchmarks (google-benchmark): the kernels underneath everything.
//
//   * jacobi5 over several tile sizes (reports points/s and effective GB/s)
//   * halo band pack/unpack
//   * corner block pack/unpack
//   * CSR SpMV (reports the index-traffic handicap vs the raw stencil)
//   * serial reference sweep
//   * obs primitives (counter/histogram/gauge/timer) and an instrumented
//     jacobi5 tile, backing the "<2% overhead" acceptance claim: compare
//     BM_Jacobi5Instrumented here against a -DREPRO_OBS_DISABLE build.
#include <benchmark/benchmark.h>

#include <array>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runtime/trace.hpp"
#include "spmv/csr.hpp"
#include "stencil/halo.hpp"
#include "stencil/kernel.hpp"
#include "stencil/kernel_opt.hpp"
#include "stencil/problem.hpp"
#include "stencil/serial.hpp"
#include "stencil/shape.hpp"

namespace {

using namespace repro;
using namespace repro::stencil;

void BM_Jacobi5(benchmark::State& state) {
  const int tile = static_cast<int>(state.range(0));
  const TileGeom g{tile, tile, 1, 1, 1, 1};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  const Stencil5 w = Stencil5::laplace_jacobi();
  for (auto _ : state) {
    jacobi5(in.data(), out.data(), g, w, 0, tile, 0, tile);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  const double points = static_cast<double>(tile) * tile;
  state.counters["points/s"] = benchmark::Counter(
      points * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["GFLOP/s"] = benchmark::Counter(
      points * kFlopsPerPoint * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Jacobi5)->Arg(64)->Arg(128)->Arg(288)->Arg(512)->Arg(1024);

void BM_Jacobi5Opt(benchmark::State& state) {
  // Optimized variants vs BM_Jacobi5: arg 0 is the KernelVariant index
  // (0 scalar, 1 vector, 2 blocked), arg 1 the square tile size. Acceptance:
  // the vector/blocked rows must beat the scalar row by >= 1.5x on a
  // cache-resident tile (see docs/REPRODUCING.md).
  const auto variant = static_cast<KernelVariant>(state.range(0));
  const int tile = static_cast<int>(state.range(1));
  const TileGeom g{tile, tile, 1, 1, 1, 1};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  const Stencil5 w = Stencil5::laplace_jacobi();
  for (auto _ : state) {
    jacobi5_opt(in.data(), out.data(), g, w, 0, tile, 0, tile, variant);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(kernel_variant_name(variant));
  const double points = static_cast<double>(tile) * tile;
  state.counters["points/s"] = benchmark::Counter(
      points * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["GFLOP/s"] = benchmark::Counter(
      points * kFlopsPerPoint * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Jacobi5Opt)->ArgsProduct({{0, 1, 2}, {64, 288, 1024}});

void BM_Jacobi5Temporal(benchmark::State& state) {
  // Fused supersteps on one CA-style deep-ghost tile: m steps per sweep over
  // a shrinking region (all four sides deep), the shared-memory analogue of
  // PA1. points/s counts every redundant update, so the win over m separate
  // BM_Jacobi5DeepGhost-style sweeps is pure locality, not less work.
  const int tile = 288;
  const int m = static_cast<int>(state.range(0));
  const TileGeom g{tile, tile, m, m, m, m};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  const Stencil5 w = Stencil5::laplace_jacobi();
  const std::array<bool, 4> shrink{true, true, true, true};
  for (auto _ : state) {
    jacobi5_temporal(in.data(), out.data(), g, w, -(m - 1), tile + m - 1,
                     -(m - 1), tile + m - 1, m, shrink);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  double points = 0.0;
  for (int t = 0; t < m; ++t) {
    const double extent = tile + 2.0 * (m - 1 - t);
    points += extent * extent;
  }
  state.counters["points/s"] = benchmark::Counter(
      points * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["GFLOP/s"] = benchmark::Counter(
      points * kFlopsPerPoint * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Jacobi5Temporal)->Arg(1)->Arg(4)->Arg(15);

void BM_Jacobi5DeepGhost(benchmark::State& state) {
  // The CA variant's extended-region update: tile 288 with 15-deep ghosts,
  // computing the full extended rectangle (superstep start).
  const int tile = 288, s = 15;
  const TileGeom g{tile, tile, s, s, s, s};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  const Stencil5 w = Stencil5::laplace_jacobi();
  for (auto _ : state) {
    jacobi5(in.data(), out.data(), g, w, -(s - 1), tile + s - 1, -(s - 1),
            tile + s - 1);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Jacobi5DeepGhost);

void BM_PackBand(benchmark::State& state) {
  const int tile = 288;
  const int depth = static_cast<int>(state.range(0));
  const TileGeom g{tile, tile, depth, depth, depth, depth};
  std::vector<double> ext(g.size(), 1.0);
  for (auto _ : state) {
    auto band = pack_band(ext.data(), g, Side::South, depth);
    benchmark::DoNotOptimize(band.data());
  }
  state.counters["B/s"] = benchmark::Counter(
      static_cast<double>(depth) * tile * sizeof(double) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PackBand)->Arg(1)->Arg(5)->Arg(15)->Arg(40);

void BM_UnpackBand(benchmark::State& state) {
  const int tile = 288;
  const int depth = static_cast<int>(state.range(0));
  const TileGeom g{tile, tile, depth, 1, 1, 1};
  std::vector<double> ext(g.size(), 0.0);
  const std::vector<double> band(static_cast<std::size_t>(depth) * tile, 1.0);
  for (auto _ : state) {
    unpack_band(ext.data(), g, Side::North, band, depth);
    benchmark::DoNotOptimize(ext.data());
  }
}
BENCHMARK(BM_UnpackBand)->Arg(1)->Arg(15);

void BM_PackCorner(benchmark::State& state) {
  const int tile = 288, s = 15;
  const TileGeom g{tile, tile, 1, 1, 1, 1};
  std::vector<double> ext(g.size(), 1.0);
  for (auto _ : state) {
    auto block = pack_corner(ext.data(), g, Corner::SE, s);
    benchmark::DoNotOptimize(block.data());
  }
}
BENCHMARK(BM_PackCorner);

void BM_CsrSpmv(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const spmv::CsrMatrix m = spmv::build_grid_matrix(n, n,
                                                    Stencil5::laplace_jacobi());
  std::vector<double> x(static_cast<std::size_t>(m.ncols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(m.nrows), 0.0);
  for (auto _ : state) {
    m.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      9.0 * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CsrSpmv)->Arg(256)->Arg(512)->Arg(1024);

void BM_ApplyShape(benchmark::State& state) {
  // Generic-shape kernel overhead vs the specialized 5-point kernel: arg 0
  // selects the shape (0 = 5-point-as-shape, 1 = cross r=2, 2 = box r=1,
  // 3 = box r=2).
  const int tile = 288;
  StencilShape shape;
  switch (state.range(0)) {
    case 0: shape = StencilShape::five_point(Stencil5::laplace_jacobi()); break;
    case 1: shape = StencilShape::random_cross(2); break;
    case 2: shape = StencilShape::random_box(1); break;
    default: shape = StencilShape::random_box(2); break;
  }
  const int r = shape.radius;
  const TileGeom g{tile, tile, r, r, r, r};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  for (auto _ : state) {
    apply_shape(in.data(), out.data(), g, shape, 0, tile, 0, tile);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(tile) * tile * shape.flops_per_point() *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ApplyShape)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_Jacobi5Variable(benchmark::State& state) {
  const int tile = 288;
  const TileGeom g{tile, tile, 1, 1, 1, 1};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  std::vector<double> coeff(kCoeffPlanes * g.size(), 0.2);
  for (auto _ : state) {
    jacobi5_var(in.data(), out.data(), g, coeff.data(), 0, tile, 0, tile);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      9.0 * tile * tile * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Jacobi5Variable);

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterInc)->ThreadRange(1, 8);

void BM_ObsGaugeAdd(benchmark::State& state) {
  obs::Gauge gauge;
  for (auto _ : state) {
    gauge.add(1.0);
  }
  benchmark::DoNotOptimize(gauge.value());
}
BENCHMARK(BM_ObsGaugeAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram hist(obs::log2_size_bounds());
  double v = 1.0;
  for (auto _ : state) {
    hist.observe(v);
    v = v < 1e6 ? v * 1.5 : 1.0;
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_ObsHistogramObserve)->ThreadRange(1, 8);

void BM_ObsScopedTimer(benchmark::State& state) {
  obs::Gauge busy;
  for (auto _ : state) {
    obs::ScopedTimer timer(busy);
  }
  benchmark::DoNotOptimize(busy.value());
}
BENCHMARK(BM_ObsScopedTimer);

rt::Tracer& tracer_record_tracer() {
  static rt::Tracer tracer(/*enabled=*/true);
  return tracer;
}

void BM_TracerRecord(benchmark::State& state) {
  // The tracer hot path: each recording thread appends to its own buffer,
  // so throughput must scale with the thread count — a per-event lock would
  // flatten the ThreadRange curve the way a shared mutex does. Iterations
  // are fixed to bound the retained event memory; Teardown drops it.
  rt::Tracer& tracer = tracer_record_tracer();
  for (auto _ : state) {
    rt::TraceEvent event;
    event.kind = rt::TraceEventKind::Task;
    event.rank = 0;
    event.worker = state.thread_index();
    event.begin_s = 0.0;
    event.end_s = 1.0;
    tracer.record(std::move(event));
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TracerRecord)
    ->ThreadRange(1, 8)
    ->Iterations(1 << 16)
    ->Teardown([](const benchmark::State&) { tracer_record_tracer().clear(); });

void BM_FlightRecorderRecord(benchmark::State& state) {
  // The recorder hot path in isolation: one lane per recording thread, so
  // the wait-free single-writer claim is load-bearing — throughput must
  // scale with ThreadRange (a shared lock would flatten the curve).
  static obs::FlightRecorder recorder(8);
  const auto lane = static_cast<std::size_t>(state.thread_index());
  obs::FlightSample sample;
  for (auto _ : state) {
    sample.tasks_executed += 1;
    sample.wire_bytes += 4096;
    recorder.record(lane, sample);
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlightRecorderRecord)->ThreadRange(1, 8);

void BM_Jacobi5FlightRecorded(benchmark::State& state) {
  // The "<2% overhead" acceptance claim, measured: the paper-configuration
  // tile with one flight-recorder sample per task-sized unit of work — the
  // densest cadence the runtime ever records at (every task completion /
  // idle transition). Compare against BM_Jacobi5/288 in the same build, and
  // against the REPRO_OBS_DISABLE build where record() is a constexpr no-op
  // and the two benchmarks must coincide.
  const int tile = 288;
  const TileGeom g{tile, tile, 1, 1, 1, 1};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  const Stencil5 w = Stencil5::laplace_jacobi();
  obs::FlightRecorder recorder(1);
  obs::FlightSample sample;
  for (auto _ : state) {
    jacobi5(in.data(), out.data(), g, w, 0, tile, 0, tile);
    sample.tasks_executed += 1;
    sample.wire_bytes += static_cast<std::uint64_t>(tile) * 8;
    recorder.record(0, sample);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  const double pts = static_cast<double>(tile) * tile;
  state.counters["GFLOP/s"] = benchmark::Counter(
      pts * kFlopsPerPoint * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Jacobi5FlightRecorded);

void BM_Jacobi5Instrumented(benchmark::State& state) {
  // The paper-configuration tile with the same per-task instrumentation the
  // runtime applies: one counter bump per task-sized unit of work. Compare
  // against BM_Jacobi5/288 and the REPRO_OBS_DISABLE build of this binary to
  // bound the instrumentation overhead (<2% required).
  const int tile = 288;
  const TileGeom g{tile, tile, 1, 1, 1, 1};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  const Stencil5 w = Stencil5::laplace_jacobi();
  obs::MetricsRegistry registry;
  auto tasks = registry.counter("rt_tasks_executed_total");
  auto points = registry.counter("stencil_computed_points_total");
  for (auto _ : state) {
    jacobi5(in.data(), out.data(), g, w, 0, tile, 0, tile);
    tasks->inc();
    points->add(static_cast<std::uint64_t>(tile) * tile);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  const double pts = static_cast<double>(tile) * tile;
  state.counters["GFLOP/s"] = benchmark::Counter(
      pts * kFlopsPerPoint * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Jacobi5Instrumented);

void BM_SerialSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Problem p = laplace_problem(n, 1);
  Grid2D in(n, n), out(n, n);
  in.fill(p.initial, p.boundary);
  out.fill(p.initial, p.boundary);
  for (auto _ : state) {
    serial_sweep(in, out, p.weights);
    benchmark::DoNotOptimize(out.at(0, 0));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      9.0 * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SerialSweep)->Arg(512)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
