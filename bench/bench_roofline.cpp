// Section VI-A: roofline expectations for the memory-bound stencil kernel.
//
// "Our estimated arithmetic intensity is between 0.37 to 0.56 ... We expect
// the effective peak performance between 14.5 to 21.9 GFLOP/s and 63.8 to
// 96.6 GFLOP/s" — and Fig. 6's measured plateaus (11 / 43.5 GFLOP/s) land
// below those windows because the kernel is unoptimized.
#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "spmv/petsc_like.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Roofline: effective peaks for the 9-FLOP/point stencil",
                "AI 0.37-0.56; peaks 14.5-21.9 (NaCL) and 63.8-96.6 "
                "(Stampede2) GFLOP/s; measured plateaus 11 / 43.5");

  Table table({"machine", "STREAM GB/s", "AI low", "AI high", "peak low GF/s",
               "peak high GF/s", "measured plateau", "% of low peak"});
  for (const auto& machine : {sim::nacl(), sim::stampede2()}) {
    const sim::Roofline roof = sim::stencil_roofline(machine);
    table.add_row({machine.name, Table::cell(machine.node_stream_bw_Bps / 1e9, 1),
                   Table::cell(roof.ai_low, 3), Table::cell(roof.ai_high, 4),
                   Table::cell(roof.gflops_low, 1),
                   Table::cell(roof.gflops_high, 1),
                   Table::cell(machine.node_stencil_gflops, 1),
                   Table::cell(100.0 * machine.node_stencil_gflops /
                                   roof.gflops_low, 1)});
  }
  table.print(std::cout);

  std::cout << "\nPer-point memory traffic (the paper's PETSc explanation):\n";
  Table traffic({"formulation", "bytes/point", "vs stencil-min"});
  traffic.add_row({"tile stencil (min)",
                   Table::cell(spmv::kStencilBytesPerPointMin, 0), "1.0x"});
  traffic.add_row({"tile stencil (max)",
                   Table::cell(spmv::kStencilBytesPerPointMax, 0), "1.5x"});
  traffic.add_row({"CSR SpMV (64-bit idx)",
                   Table::cell(spmv::spmv_bytes_per_point(), 0),
                   Table::cell(spmv::spmv_bytes_per_point() /
                                   spmv::kStencilBytesPerPointMin, 1) + "x"});
  traffic.print(std::cout);

  bench::maybe_csv(table, options, "roofline.csv");
  return 0;
}
