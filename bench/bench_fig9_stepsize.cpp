// Fig. 9: tuned step-size performance — GFLOP/s vs kernel-adjustment ratio
// for CA step sizes 5, 15, 25, 40.
//
// Same workloads as Fig. 8. Shape to check (paper section VI-D): when CA can
// improve over base, the step size must be tuned — small s under-amortizes
// latency, large s over-pays in redundant work and burst bandwidth; the
// optimum moves with the ratio.
#include "bench_common.hpp"
#include "sim/models.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Fig. 9: GFLOP/s vs ratio for CA step sizes {5,15,25,40}",
                "optimal step size must be tuned; interplay between step "
                "size and kernel execution time is complicated");

  const int iters = static_cast<int>(options.get_int("iters", 100));

  struct System {
    sim::Machine machine;
    int n;
    int tile;
  };
  const System systems[] = {{sim::nacl(), 23040, 288},
                            {sim::stampede2(), 55296, 864}};
  const int all_steps[] = {5, 15, 25, 40};

  for (const auto& sys : systems) {
    for (int side : {2, 4, 8}) {
      std::cout << sys.machine.name << ", " << side * side << " nodes:\n";
      Table table({"ratio", "base", "s=5", "s=15", "s=25", "s=40", "best"});
      for (double ratio : {0.2, 0.4, 0.6, 0.8}) {
        sim::StencilSimParams base{sys.machine, sys.n, sys.tile, side, side,
                                   iters, 1, ratio};
        std::vector<std::string> row{Table::cell(ratio, 1)};
        const double base_gf = sim::simulate_stencil(base).gflops;
        row.push_back(Table::cell(base_gf, 1));
        double best = base_gf;
        std::string best_name = "base";
        for (int s : all_steps) {
          sim::StencilSimParams ca = base;
          ca.steps = s;
          const double gf = sim::simulate_stencil(ca).gflops;
          row.push_back(Table::cell(gf, 1));
          if (gf > best) {
            best = gf;
            best_name = "s=" + std::to_string(s);
          }
        }
        row.push_back(best_name);
        table.add_row(std::move(row));
      }
      table.print(std::cout);
      std::cout << '\n';
      bench::maybe_csv(table, options,
                       "fig9_" + sys.machine.name + "_" +
                           std::to_string(side * side) + "n.csv");
    }
  }
  return 0;
}
