// Table I: STREAM benchmark results (MB/s) for NaCL and Stampede2.
//
// Prints the paper's recorded rows verbatim alongside rows measured on the
// host machine (1 thread and all hardware threads). Shapes to check: one
// core does not saturate the memory interface on the paper's machines; on
// small VMs the two rows may coincide.
#include <thread>

#include "bench_common.hpp"
#include "stream/stream.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Table I: STREAM bandwidth (MB/s)",
                "NaCL 1-core COPY 9814.2 / 1-node 40091.3; "
                "Stampede2 1-core 10632.6 / 1-node 176701.1");

  Table table({"system", "scale", "COPY", "SCALE", "ADD", "TRIAD"});
  for (const auto& row : stream::paper_table_one()) {
    table.add_row({row.system + " (paper)", row.scale,
                   Table::cell(row.copy_MBps, 1), Table::cell(row.scale_MBps, 1),
                   Table::cell(row.add_MBps, 1), Table::cell(row.triad_MBps, 1)});
  }

  const auto n = static_cast<std::size_t>(
      options.get_int("elements", 1 << 24));  // 128 MiB/array default
  const int trials = static_cast<int>(options.get_int("trials", 5));
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  const auto one = stream::run_stream(n, trials, 1);
  table.add_row({"host (measured)", "1-core", Table::cell(one.copy_Bps / 1e6, 1),
                 Table::cell(one.scale_Bps / 1e6, 1),
                 Table::cell(one.add_Bps / 1e6, 1),
                 Table::cell(one.triad_Bps / 1e6, 1)});
  if (hw > 1) {
    const auto node = stream::run_stream(n, trials, hw);
    table.add_row({"host (measured)", std::to_string(hw) + "-thread",
                   Table::cell(node.copy_Bps / 1e6, 1),
                   Table::cell(node.scale_Bps / 1e6, 1),
                   Table::cell(node.add_Bps / 1e6, 1),
                   Table::cell(node.triad_Bps / 1e6, 1)});
  }
  table.print(std::cout);
  bench::maybe_csv(table, options, "table1_stream.csv");
  return 0;
}
