# Benchmark harnesses: one binary per paper table/figure plus micro and
# ablation suites. Included from the top-level CMakeLists (not
# add_subdirectory) so ${CMAKE_BINARY_DIR}/bench contains ONLY executables --
# `for b in build/bench/*; do $b; done` then runs them all cleanly.
set(REPRO_BENCH_LIBS repro_serve repro_fault repro_stream repro_sim repro_spmv
    repro_stencil repro_runtime repro_net repro_obs_trace repro_obs
    repro_support Threads::Threads)

function(repro_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${REPRO_BENCH_LIBS})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

repro_add_bench(bench_table1_stream)
repro_add_bench(bench_fig5_netpipe)
repro_add_bench(bench_fig6_tilesize)
repro_add_bench(bench_fig7_strong_scaling)
repro_add_bench(bench_fig8_kernel_ratio)
repro_add_bench(bench_fig9_stepsize)
repro_add_bench(bench_spec_sweep)
repro_add_bench(bench_fig10_trace)
repro_add_bench(bench_roofline)
repro_add_bench(bench_ablation)

repro_add_bench(bench_micro_kernels)
target_link_libraries(bench_micro_kernels PRIVATE benchmark::benchmark)
repro_add_bench(bench_exascale_projection)
repro_add_bench(bench_weak_scaling)
repro_add_bench(bench_fault_sweep)
repro_add_bench(bench_sched_compare)
repro_add_bench(bench_serve_saturation)
