// Weak scaling (extension): per-node problem fixed, node count grows.
//
// The paper runs strong scaling only; weak scaling is the complementary
// regime and the one where the CA tradeoff reads most cleanly: per-node
// kernel time is constant, so any efficiency loss is pure communication.
// Per-node block: the paper's 16-node working set (5760^2 on NaCL-like
// nodes, 13824^2 on Stampede2-like), tile sizes as in Fig. 7.
#include <cmath>

#include "bench_common.hpp"
#include "sim/models.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Weak scaling (extension): fixed work per node",
                "efficiency = T(1 node) / T(P nodes); losses are pure "
                "communication; CA recovers them when kernels are fast");

  const int iters = static_cast<int>(options.get_int("iters", 60));
  const double ratio = options.get_double("ratio", 0.3);
  sim::LossModel loss;
  loss.loss_rate = options.get_double("loss", 0.0);

  struct System {
    sim::Machine machine;
    int block;  ///< per-node block edge
    int tile;
  };
  const System systems[] = {{sim::nacl(), 5760, 288},
                            {sim::stampede2(), 13824, 864}};

  for (const auto& sys : systems) {
    std::cout << sys.machine.name << " (block " << sys.block << "^2/node, "
              << "tile " << sys.tile << ", ratio " << ratio << "):\n";
    double t1_base = 0.0;
    double t1_ca = 0.0;
    Table table({"nodes", "base GF/s", "CA GF/s", "base eff %", "CA eff %"});
    for (int side : {1, 2, 4, 8}) {
      const int n = sys.block * side;
      sim::StencilSimParams base{sys.machine, n, sys.tile, side, side, iters,
                                 1, ratio};
      base.loss = loss;
      sim::StencilSimParams ca = base;
      ca.steps = 15;
      const auto rb = sim::simulate_stencil(base);
      const auto rc = sim::simulate_stencil(ca);
      if (side == 1) {
        t1_base = rb.time_s;
        t1_ca = rc.time_s;
      }
      table.add_row({Table::cell(static_cast<long long>(side * side)),
                     Table::cell(rb.gflops, 1), Table::cell(rc.gflops, 1),
                     Table::cell(100.0 * t1_base / rb.time_s, 1),
                     Table::cell(100.0 * t1_ca / rc.time_s, 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
    bench::maybe_csv(table, options, "weak_" + sys.machine.name + ".csv");
  }
  return 0;
}
