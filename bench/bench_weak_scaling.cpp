// Weak scaling (extension): per-node problem fixed, node count grows.
//
// The paper runs strong scaling only; weak scaling is the complementary
// regime and the one where the CA tradeoff reads most cleanly: per-node
// kernel time is constant, so any efficiency loss is pure communication.
// Per-node block: the paper's 16-node working set (5760^2 on NaCL-like
// nodes, 13824^2 on Stampede2-like), tile sizes as in Fig. 7.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "sim/models.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  bench::header("Weak scaling (extension): fixed work per node",
                "efficiency = T(1 node) / T(P nodes); losses are pure "
                "communication; CA recovers them when kernels are fast");

  const int iters = static_cast<int>(options.get_int("iters", 60));
  const double ratio = options.get_double("ratio", 0.3);
  sim::LossModel loss;
  loss.loss_rate = options.get_double("loss", 0.0);

  obs::RunReport report("bench_weak_scaling");
  report.set_param("iters", obs::Json(iters));
  report.set_param("ratio", obs::Json(ratio));
  report.set_param("loss", obs::Json(loss.loss_rate));
  double worst_ca_eff_pct = 100.0;

  struct System {
    sim::Machine machine;
    int block;  ///< per-node block edge
    int tile;
  };
  const System systems[] = {{sim::nacl(), 5760, 288},
                            {sim::stampede2(), 13824, 864}};

  for (const auto& sys : systems) {
    std::cout << sys.machine.name << " (block " << sys.block << "^2/node, "
              << "tile " << sys.tile << ", ratio " << ratio << "):\n";
    double t1_base = 0.0;
    double t1_ca = 0.0;
    Table table({"nodes", "base GF/s", "CA GF/s", "base eff %", "CA eff %"});
    for (int side : {1, 2, 4, 8}) {
      const int n = sys.block * side;
      sim::StencilSimParams base{sys.machine, n, sys.tile, side, side, iters,
                                 1, ratio};
      base.loss = loss;
      sim::StencilSimParams ca = base;
      ca.steps = 15;
      const auto rb = sim::simulate_stencil(base);
      const auto rc = sim::simulate_stencil(ca);
      if (side == 1) {
        t1_base = rb.time_s;
        t1_ca = rc.time_s;
      }
      const double base_eff_pct = 100.0 * t1_base / rb.time_s;
      const double ca_eff_pct = 100.0 * t1_ca / rc.time_s;
      table.add_row({Table::cell(static_cast<long long>(side * side)),
                     Table::cell(rb.gflops, 1), Table::cell(rc.gflops, 1),
                     Table::cell(base_eff_pct, 1),
                     Table::cell(ca_eff_pct, 1)});
      worst_ca_eff_pct = std::min(worst_ca_eff_pct, ca_eff_pct);
      obs::Json row = obs::Json::object();
      row["machine"] = obs::Json(sys.machine.name);
      row["nodes"] = obs::Json(side * side);
      row["N"] = obs::Json(n);
      row["tile"] = obs::Json(sys.tile);
      row["base_gflops"] = obs::Json(rb.gflops);
      row["ca_gflops"] = obs::Json(rc.gflops);
      row["base_eff_pct"] = obs::Json(base_eff_pct);
      row["ca_eff_pct"] = obs::Json(ca_eff_pct);
      row["messages"] = obs::Json(rc.sim.messages);
      row["bytes"] = obs::Json(rc.sim.message_bytes);
      report.add_result(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
    bench::maybe_csv(table, options, "weak_" + sys.machine.name + ".csv");
  }
  report.set_derived("worst_ca_eff_pct", obs::Json(worst_ca_eff_pct));
  bench::maybe_report(report, options, "weak_report.json");
  return 0;
}
