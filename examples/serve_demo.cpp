// Service-mode walkthrough: one resident runtime, many tenants.
//
// Spins up a SolverFarm (the PaRSEC-style runtime stays warm between jobs),
// then plays a small story:
//
//   1. three interactive tenants submit small CA solves — the farm batches
//      them into shared task graphs and round-robins lanes fairly;
//   2. a "batch" tenant submits one big windowed job — it runs in
//      checkpointed supersteps via fault::CheckpointStore;
//   3. an interactive tenant arrives with a deadline — the farm preempts
//      the big job at the next superstep boundary, runs the urgent solve,
//      then resumes the big job from its checkpoint, bit-identically;
//   4. a greedy tenant floods the queue — admission control rejects the
//      overflow with a reason instead of growing without bound.
//
// Ctrl-C at any point shuts down gracefully: queued jobs are cancelled with
// their last consistent state and the farm drains before exiting.
#include <atomic>
#include <chrono>
#include <csignal>
#include <future>
#include <iostream>
#include <vector>

#include "serve/solver_farm.hpp"
#include "stencil/serial.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main() {
  using namespace repro;

  serve::FarmConfig config;
  config.node_rows = 2;
  config.node_cols = 2;
  config.workers_per_rank = 2;
  config.preempt_cost_threshold = 40 * 40 * 16;  // only the big job windows
  config.checkpoint_supersteps = 1;
  config.admission.max_queued_per_tenant = 3;
  // Signal once the big windowed job is actually executing supersteps, so
  // the deadline submit below lands while it is running (and preempts it).
  std::promise<void> batch_running;
  auto signalled = std::make_shared<std::atomic<bool>>(false);
  config.superstep_observer = [&batch_running, signalled](std::uint64_t,
                                                         int superstep) {
    if (superstep >= 4 && !signalled->exchange(true)) {
      batch_running.set_value();
    }
  };
  serve::SolverFarm farm(config);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::cout << "Solver farm up: " << farm.nodes()
            << " virtual nodes, one resident runtime.\n\n";

  // --- 1. interactive tenants, batched into shared graphs ---------------
  std::cout << "[1] three tenants submit small CA solves...\n";
  std::vector<std::future<serve::SolveResponse>> small;
  for (int t = 0; t < 3; ++t) {
    static const char* names[] = {"alice", "bob", "carol"};
    serve::SolveRequest request;
    request.tenant = names[t];
    request.problem = stencil::random_problem(24, 24, 4, 100 + t);
    request.mb = 12;
    request.nb = 12;
    request.steps = 2;
    auto submission = farm.submit(request);
    small.push_back(std::move(submission.response));
  }

  // --- 2. one big windowed job ------------------------------------------
  std::cout << "[2] tenant 'batch' submits a big job (checkpointed windows)...\n";
  serve::SolveRequest big;
  big.tenant = "batch";
  big.problem = stencil::random_problem(120, 120, 64, 7);
  big.mb = 60;
  big.nb = 60;
  big.steps = 4;
  const stencil::Grid2D big_expected = stencil::solve_serial(big.problem);
  auto big_submission = farm.submit(big);

  // --- 3. a deadline job preempts it ------------------------------------
  batch_running.get_future().wait_for(std::chrono::seconds(5));
  std::cout << "[3] 'alice' returns with a deadline -> preempts 'batch' at "
               "the next superstep...\n";
  serve::SolveRequest urgent;
  urgent.tenant = "alice";
  urgent.problem = stencil::random_problem(24, 24, 4, 500);
  urgent.mb = 12;
  urgent.nb = 12;
  urgent.steps = 2;
  urgent.deadline_s = 5.0;
  auto urgent_submission = farm.submit(urgent);

  for (auto& f : small) {
    const auto r = f.get();
    std::cout << "    " << r.tenant << ": " << serve::job_status_name(r.status)
              << " (" << r.iterations_done << " iters)\n";
  }
  if (urgent_submission.accepted()) {
    const auto r = urgent_submission.response.get();
    std::cout << "    alice (deadline): " << serve::job_status_name(r.status)
              << ", deadline " << (r.deadline_met ? "met" : "MISSED") << "\n";
  }
  if (big_submission.accepted()) {
    const auto r = big_submission.response.get();
    std::cout << "    batch: " << serve::job_status_name(r.status) << ", "
              << r.preemptions << " preemption(s), " << r.windows
              << " window(s), bit-identical to serial: "
              << (stencil::Grid2D::max_abs_diff(r.grid, big_expected) == 0.0
                      ? "yes"
                      : "NO")
              << "\n";
  }

  // --- 4. admission control under a flood --------------------------------
  std::cout << "\n[4] tenant 'greedy' floods the queue...\n";
  int rejected = 0;
  std::vector<std::future<serve::SolveResponse>> flood;
  for (int j = 0; j < 8 && !g_stop; ++j) {
    serve::SolveRequest request;
    request.tenant = "greedy";
    request.problem = stencil::random_problem(24, 24, 4, 900 + j);
    request.mb = 12;
    request.nb = 12;
    auto submission = farm.submit(request);
    if (submission.accepted()) {
      flood.push_back(std::move(submission.response));
    } else {
      ++rejected;
      if (rejected == 1) {
        std::cout << "    rejected: "
                  << serve::reject_reason_name(submission.rejected) << "\n";
      }
    }
  }
  std::cout << "    accepted " << flood.size() << ", rejected " << rejected
            << " (queue stays bounded)\n";
  for (auto& f : flood) f.wait();

  farm.shutdown(/*drain=*/g_stop == 0);
  std::cout << "\nFarm drained. Per-tenant accounting:\n";
  for (const auto& s : farm.tenant_stats()) {
    std::cout << "    " << s.tenant << ": submitted=" << s.submitted
              << " completed=" << s.completed << " rejected=" << s.rejected
              << " preemptions=" << s.preemptions
              << " goodput=" << s.goodput_points << " pts\n";
  }
  return 0;
}
