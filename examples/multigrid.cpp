// Geometric multigrid V-cycles with a Jacobi smoother — the other motivating
// algorithm from the paper's introduction ("geometric multigrid").
//
// Solves -Laplace(u) = f with damped-Jacobi smoothing (the exact kernel this
// library's stencil substrates accelerate), full-weighting restriction and
// bilinear prolongation. Prints per-cycle residual norms to show the
// textbook grid-independent convergence rate, and contrasts the cost with
// plain Jacobi: every smoothing sweep on every level is a 5-point stencil
// application, so a runtime that makes stencils fast (and communication
// cheap, via CA) makes multigrid fast.
//
// Usage: multigrid [--n=129] [--cycles=10] [--pre=2] [--post=2]
#include <cmath>
#include <cstdio>
#include <vector>

#include "support/options.hpp"
#include "support/timing.hpp"

namespace {

/// Square grid of interior unknowns with implicit zero Dirichlet boundary.
struct Level {
  int n = 0;  ///< interior points per side
  std::vector<double> u, f, scratch;

  explicit Level(int points)
      : n(points),
        u(static_cast<std::size_t>(points) * points, 0.0),
        f(u.size(), 0.0),
        scratch(u.size(), 0.0) {}

  double at(const std::vector<double>& v, int i, int j) const {
    if (i < 0 || i >= n || j < 0 || j >= n) return 0.0;
    return v[static_cast<std::size_t>(i) * n + j];
  }
  double& cell(std::vector<double>& v, int i, int j) const {
    return v[static_cast<std::size_t>(i) * n + j];
  }
};

/// One damped-Jacobi sweep (omega = 4/5, the classic smoother choice) on
/// h^2-scaled equations: u' = u + omega/4 * (f - A u).
void smooth(Level& level, double h2) {
  constexpr double kOmega = 0.8;
  auto& u = level.u;
  auto& next = level.scratch;
  for (int i = 0; i < level.n; ++i) {
    for (int j = 0; j < level.n; ++j) {
      const double au = 4.0 * level.at(u, i, j) - level.at(u, i - 1, j) -
                        level.at(u, i + 1, j) - level.at(u, i, j - 1) -
                        level.at(u, i, j + 1);
      level.cell(next, i, j) =
          level.at(u, i, j) +
          kOmega * 0.25 * (h2 * level.at(level.f, i, j) - au);
    }
  }
  std::swap(level.u, level.scratch);
}

/// Residual r = f - A u / h^2 (returned unscaled on the h^2 convention).
void residual(const Level& level, double h2, std::vector<double>& r) {
  for (int i = 0; i < level.n; ++i) {
    for (int j = 0; j < level.n; ++j) {
      const double au = 4.0 * level.at(level.u, i, j) -
                        level.at(level.u, i - 1, j) -
                        level.at(level.u, i + 1, j) -
                        level.at(level.u, i, j - 1) -
                        level.at(level.u, i, j + 1);
      r[static_cast<std::size_t>(i) * level.n + j] =
          level.at(level.f, i, j) - au / h2;
    }
  }
}

double norm(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

/// Full-weighting restriction of fine residual to the coarse RHS.
void restrict_to(const Level& fine, const std::vector<double>& r,
                 Level& coarse) {
  auto rat = [&](int i, int j) -> double {
    if (i < 0 || i >= fine.n || j < 0 || j >= fine.n) return 0.0;
    return r[static_cast<std::size_t>(i) * fine.n + j];
  };
  for (int ci = 0; ci < coarse.n; ++ci) {
    for (int cj = 0; cj < coarse.n; ++cj) {
      const int i = 2 * ci + 1;
      const int j = 2 * cj + 1;
      coarse.cell(coarse.f, ci, cj) =
          0.25 * rat(i, j) +
          0.125 * (rat(i - 1, j) + rat(i + 1, j) + rat(i, j - 1) +
                   rat(i, j + 1)) +
          0.0625 * (rat(i - 1, j - 1) + rat(i - 1, j + 1) +
                    rat(i + 1, j - 1) + rat(i + 1, j + 1));
    }
  }
}

/// Bilinear prolongation: add the coarse correction into the fine solution.
void prolongate_add(const Level& coarse, Level& fine) {
  auto cat = [&](int i, int j) -> double {
    if (i < 0 || i >= coarse.n || j < 0 || j >= coarse.n) return 0.0;
    return coarse.u[static_cast<std::size_t>(i) * coarse.n + j];
  };
  for (int i = 0; i < fine.n; ++i) {
    for (int j = 0; j < fine.n; ++j) {
      // Fine point (i,j) sits between coarse points ((i-1)/2, (j-1)/2)...
      const double fi = (i - 1) / 2.0;
      const double fj = (j - 1) / 2.0;
      const int ci = static_cast<int>(std::floor(fi));
      const int cj = static_cast<int>(std::floor(fj));
      const double wi = fi - ci;
      const double wj = fj - cj;
      fine.cell(fine.u, i, j) +=
          (1 - wi) * (1 - wj) * cat(ci, cj) + (1 - wi) * wj * cat(ci, cj + 1) +
          wi * (1 - wj) * cat(ci + 1, cj) + wi * wj * cat(ci + 1, cj + 1);
    }
  }
}

void v_cycle(std::vector<Level>& levels, std::size_t depth, double h2,
             int pre, int post) {
  Level& level = levels[depth];
  for (int s = 0; s < pre; ++s) smooth(level, h2);

  if (depth + 1 < levels.size()) {
    std::vector<double> r(level.u.size());
    residual(level, h2, r);
    Level& coarse = levels[depth + 1];
    std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
    restrict_to(level, r, coarse);
    v_cycle(levels, depth + 1, 4.0 * h2, pre, post);
    prolongate_add(coarse, level);
  } else {
    for (int s = 0; s < 40; ++s) smooth(level, h2);  // coarse "solve"
  }
  for (int s = 0; s < post; ++s) smooth(level, h2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  const int n = static_cast<int>(options.get_int("n", 129));
  const int cycles = static_cast<int>(options.get_int("cycles", 10));
  const int pre = static_cast<int>(options.get_int("pre", 2));
  const int post = static_cast<int>(options.get_int("post", 2));

  // Build the level hierarchy: n must be 2^k - 1 style for clean coarsening;
  // coarsen while at least 3 points remain.
  std::vector<Level> levels;
  for (int size = n; size >= 3; size = (size - 1) / 2) {
    levels.emplace_back(size);
    if ((size - 1) % 2 != 0) break;
  }
  Level& fine = levels.front();

  // RHS: smooth bump source.
  const double h = 1.0 / (n + 1);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double x = (i + 1) * h;
      const double y = (j + 1) * h;
      fine.cell(fine.f, i, j) = std::sin(M_PI * x) * std::sin(M_PI * y);
    }
  }

  std::printf("Geometric multigrid, %dx%d fine grid, %zu levels, V(%d,%d)\n\n",
              n, n, levels.size(), pre, post);

  std::vector<double> r(fine.u.size());
  residual(fine, h * h, r);
  const double r0 = norm(r);
  std::printf("cycle  0: ||r|| = %.3e\n", r0);

  Timer timer;
  double prev = r0;
  for (int cycle = 1; cycle <= cycles; ++cycle) {
    v_cycle(levels, 0, h * h, pre, post);
    residual(fine, h * h, r);
    const double rn = norm(r);
    std::printf("cycle %2d: ||r|| = %.3e  (rate %.3f)\n", cycle, rn,
                rn / prev);
    prev = rn;
  }
  const double elapsed = timer.elapsed();

  std::printf("\n%d V-cycles took %.1f ms; residual reduced %.1e-fold.\n",
              cycles, elapsed * 1e3, r0 / prev);
  std::printf("Every smoothing sweep above is a 5-point Jacobi stencil — the "
              "kernel whose distributed,\ncommunication-avoiding execution "
              "this library reproduces from the paper.\n");
  // Grid-independent convergence is the multigrid hallmark; fail loudly if
  // the cycle stopped contracting.
  return prev < 1e-3 * r0 ? 0 : 1;
}
