// Resilient stencil walkthrough: survive a mid-run network blackout.
//
// Builds the full resilience stack —
//
//   run_resilient                 (windowed execution + rollback)
//     -> CheckpointStore          (tile snapshots at superstep boundaries)
//     -> run_distributed          (the ordinary CA solver)
//          -> ReliableChannel     (seq/ack/retransmit, exactly-once FIFO)
//          -> FaultInjector       (seeded drop/dup/reorder + blackout)
//          -> Transport           (the in-memory wire)
//
// — then kills the network partway through the first attempt and shows the
// runner rolling back to the last complete superstep and finishing with a
// result bit-identical to the fault-free serial reference.
#include <iostream>
#include <memory>

#include "fault/fault_injector.hpp"
#include "fault/reliable_channel.hpp"
#include "fault/resilient.hpp"
#include "net/transport.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"

int main() {
  using namespace repro;

  const int n = 96;
  const int iterations = 24;
  const stencil::Problem problem = stencil::laplace_problem(n, iterations);
  const stencil::Grid2D expected = solve_serial(problem);

  fault::ResilientConfig config;
  config.dist.decomp = {24, 24, 2, 2};
  config.dist.steps = 4;
  config.dist.workers_per_rank = 2;
  config.checkpoint_supersteps = 1;  // checkpoint every 4 iterations

  int attempt = 0;
  config.channel_factory = [&attempt](int nranks) -> std::shared_ptr<net::Channel> {
    auto transport = std::make_shared<net::Transport>(nranks);
    fault::FaultPlan plan = fault::FaultPlan::uniform(7, 0.05, 0.02, 0.02);
    if (attempt == 0) plan.blackout_after = 40;  // first attempt: net dies
    ++attempt;
    auto injector = std::make_shared<fault::FaultInjector>(transport, plan);
    fault::ReliableConfig reliable;
    reliable.timeout_s = 0.001;
    reliable.max_retries = 5;
    return std::make_shared<fault::ReliableChannel>(injector, reliable);
  };

  std::cout << "Running " << n << "x" << n << " Jacobi, " << iterations
            << " iterations, CA s=" << config.dist.steps
            << ", 5% loss, blackout on attempt 1...\n";
  const fault::ResilientResult result = run_resilient(problem, config);

  std::cout << "windows completed     " << result.windows << "\n"
            << "attempts (total)      " << result.attempts << "\n"
            << "rollbacks             " << result.rollbacks << "\n"
            << "mid-window resumes    " << result.resumed_mid_window << "\n"
            << "wire messages         " << result.messages << "\n"
            << "checkpoints stored    " << result.checkpoints.stored << " ("
            << result.checkpoints.bytes / 1024 << " KiB retained)\n";

  const double diff = stencil::Grid2D::max_abs_diff(expected, result.grid);
  std::cout << "max |resilient - serial| = " << diff
            << (diff == 0.0 ? "  (bit-identical)" : "  (MISMATCH!)") << "\n";
  return diff == 0.0 ? 0 : 1;
}
