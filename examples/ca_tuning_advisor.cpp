// CA tuning advisor: "should I use communication avoidance, and what step
// size?" — the library's simulator as a planning tool.
//
// Given a machine preset, problem size, tile size, node grid and kernel
// speed (ratio), the advisor sweeps step sizes through the calibrated
// discrete-event simulator and reports predicted GFLOP/s, message counts,
// redundant work, and a recommendation. This packages the paper's
// conclusion ("the optimal step size can be searched via experiment runs")
// as an offline search.
//
// Usage: ca_tuning_advisor [--machine=nacl|stampede2] [--n=23040]
//                          [--tile=288] [--nodes=4] [--ratio=0.3]
//                          [--iters=60]
#include <cstdio>
#include <iostream>
#include <vector>

#include "sim/models.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  const std::string machine_name = options.get_string("machine", "nacl");
  const sim::Machine machine =
      machine_name == "stampede2" ? sim::stampede2() : sim::nacl();
  const int n = static_cast<int>(options.get_int("n", 23040));
  const int tile = static_cast<int>(options.get_int("tile", 288));
  const int side = static_cast<int>(options.get_int("nodes", 4));
  const double ratio = options.get_double("ratio", 0.3);
  const int iters = static_cast<int>(options.get_int("iters", 60));

  std::printf("CA tuning advisor\n");
  std::printf("  machine : %s (%d cores, %.1f GB/s STREAM, %.0f Gb/s link)\n",
              machine.name.c_str(), machine.cores_per_node,
              machine.node_stream_bw_Bps / 1e9,
              machine.link.theoretical_bw_Bps * 8 / 1e9);
  std::printf("  problem : N=%d, tile=%d, %dx%d nodes, kernel ratio %.2f, "
              "%d iterations\n\n", n, tile, side, side, ratio, iters);

  Table table({"step size", "GF/s", "messages", "MB on wire", "redundant %",
               "vs base %"});
  double base_gf = 0.0;
  double best_gf = 0.0;
  int best_s = 1;
  for (int s : {1, 2, 5, 10, 15, 20, 25, 40}) {
    if (s > tile) break;
    sim::StencilSimParams params{machine, n, tile, side, side, iters, s,
                                 ratio};
    const auto out = sim::simulate_stencil(params);
    if (s == 1) base_gf = out.gflops;
    if (out.gflops > best_gf) {
      best_gf = out.gflops;
      best_s = s;
    }
    table.add_row({s == 1 ? "base (s=1)" : "s=" + std::to_string(s),
                   Table::cell(out.gflops, 1),
                   Table::cell(static_cast<long long>(out.sim.messages)),
                   Table::cell(out.sim.message_bytes / 1e6, 1),
                   Table::cell(100.0 * out.redundant_fraction, 2),
                   Table::cell(100.0 * (out.gflops / base_gf - 1.0), 1)});
  }
  table.print(std::cout);

  std::printf("\nRecommendation: ");
  if (best_s == 1 || best_gf < 1.02 * base_gf) {
    std::printf("stay with the base version — the kernel is memory-bound "
                "enough to hide communication (the paper's Fig. 7 regime).\n");
  } else {
    std::printf("use CA with s=%d: predicted +%.0f%% over base (the paper's "
                "Fig. 8/9 regime).\n", best_s,
                100.0 * (best_gf / base_gf - 1.0));
  }
  return 0;
}
