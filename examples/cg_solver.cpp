// Conjugate-gradient Poisson solver: the Krylov scenario from the paper's
// introduction ("stencil computation or general sparse matrix-vector product
// (SpMV) are key components in many algorithms like ... Krylov solvers").
//
// Solves -Laplace(u) = f on a square plate with a point heat source, two
// ways: CG over the library's CSR substrate, and classic Jacobi relaxation
// (the method every stencil bench in this repo iterates). Both converge to
// the same discrete solution; CG gets there in O(N) matrix applications
// instead of O(N^2) sweeps — and every application is an SpMV, which is why
// the paper cares about communication-avoiding SpMV/stencil kernels.
//
// Usage: cg_solver [--n=48] [--rtol=1e-10]
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "spmv/laplacian.hpp"
#include "spmv/petsc_like.hpp"
#include "spmv/task_cg.hpp"
#include "support/options.hpp"
#include "support/timing.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  const int n = static_cast<int>(options.get_int("n", 48));
  const double rtol = options.get_double("rtol", 1e-10);

  // -Laplace(u) = f: point source in the upper-left quadrant, cold walls.
  auto f = [n](long i, long j) {
    return (i == n / 4 && j == n / 4) ? 50.0 : 0.0;
  };
  auto g = [](long, long) { return 0.0; };

  std::printf("Poisson solve, %dx%d interior, point source at (%d,%d)\n\n", n,
              n, n / 4, n / 4);

  // --- Route 1: conjugate gradients on the SPD Laplacian (Krylov). ---
  const spmv::CsrMatrix a = spmv::build_laplacian_matrix(n, n);
  const auto b = spmv::build_poisson_rhs(n, n, f, g);
  Timer cg_timer;
  const spmv::CgResult cg = spmv::conjugate_gradient(a, b, rtol);
  const double cg_time = cg_timer.elapsed();
  std::printf("CG    : %s in %d iterations (%.1f ms), residual %.2e\n",
              cg.converged ? "converged" : "NOT converged", cg.iterations,
              cg_time * 1e3, cg.residual_norm);

  // --- Route 2: the same CG expressed as a task graph over the runtime
  //     (DTD): SpMV halos and dot-product reductions become messages. ---
  Timer task_timer;
  const spmv::TaskCgResult task = spmv::task_cg(n, b, 4, cg.iterations, 2);
  const double task_time = task_timer.elapsed();
  double task_vs_serial = 0.0;
  for (std::size_t k = 0; k < b.size(); ++k) {
    task_vs_serial = std::max(task_vs_serial, std::fabs(task.x[k] - cg.x[k]));
  }
  std::printf("taskCG: same %d iterations over 4 virtual ranks (%.1f ms), "
              "%llu messages,\n        residual %.2e, max diff vs serial CG "
              "%.1e\n", cg.iterations, task_time * 1e3,
              static_cast<unsigned long long>(task.stats.messages),
              task.residual_norm, task_vs_serial);

  // --- Route 3: Jacobi relaxation, u' = (b + sum of neighbors) / 4. ---
  const int sweeps = 6 * n * n;  // Jacobi needs O(N^2) sweeps to converge
  Timer jacobi_timer;
  std::vector<double> u(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> next = u;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        auto at = [&](int ii, int jj) -> double {
          if (ii < 0 || ii >= n || jj < 0 || jj >= n) return 0.0;
          return u[static_cast<std::size_t>(ii) * n + jj];
        };
        next[static_cast<std::size_t>(i) * n + j] =
            0.25 * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) +
                    at(i, j + 1) + b[static_cast<std::size_t>(i) * n + j]);
      }
    }
    std::swap(u, next);
  }
  const double jacobi_time = jacobi_timer.elapsed();

  double worst = 0.0;
  for (std::size_t k = 0; k < u.size(); ++k) {
    worst = std::max(worst, std::fabs(u[k] - cg.x[k]));
  }
  std::printf("Jacobi: %d sweeps (%.1f ms), max |Jacobi - CG| = %.2e\n",
              sweeps, jacobi_time * 1e3, worst);

  std::printf("\nCG needed %dx fewer matrix applications than Jacobi — and "
              "every one is an SpMV,\nwhich is why the paper cares about "
              "communication-avoiding SpMV kernels.\n",
              sweeps / std::max(cg.iterations, 1));
  std::printf("CSR traffic per point: %.0f B vs %g-%g B for the matrix-free "
              "stencil (the PETSc gap).\n",
              spmv::spmv_bytes_per_point(), spmv::kStencilBytesPerPointMin,
              spmv::kStencilBytesPerPointMax);
  return worst < 1e-6 ? 0 : 1;
}
