// Heat diffusion on a plate: the paper intro's motivating PDE scenario.
//
// A square metal plate has a heater clamped to its west edge (T = 100 C),
// the east edge is ice-cooled (0 C), and the north/south edges ramp
// linearly. Jacobi iteration relaxes the interior toward the steady-state
// temperature field; we run it with the CA-distributed solver, report
// convergence every so often, and render the final field as an ASCII
// heatmap.
//
// Usage: heat_diffusion [--n=48] [--rounds=5] [--iters-per-round=400]
//                       [--steps=6]
#include <cstdio>
#include <string>

#include "stencil/solver.hpp"
#include "support/options.hpp"

namespace {

using namespace repro;

/// Render the temperature field as an ASCII heatmap (row-downsampled).
void render(const stencil::Grid2D& grid, int max_rows, int max_cols) {
  static const char shades[] = " .:-=+*#%@";
  const int rstep = std::max(1, grid.rows() / max_rows);
  const int cstep = std::max(1, grid.cols() / max_cols);
  for (int i = 0; i < grid.rows(); i += rstep) {
    std::string line;
    for (int j = 0; j < grid.cols(); j += cstep) {
      const double t = grid.at(i, j) / 100.0;  // 0..1
      const int shade = std::clamp(static_cast<int>(t * 9.0), 0, 9);
      line += shades[shade];
    }
    std::printf("|%s|\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const int n = static_cast<int>(options.get_int("n", 48));
  const int rounds = static_cast<int>(options.get_int("rounds", 5));
  const int per_round = static_cast<int>(options.get_int("iters-per-round", 400));
  const int steps = static_cast<int>(options.get_int("steps", 6));

  stencil::Problem problem;
  problem.rows = n;
  problem.cols = n;
  problem.weights = stencil::Stencil5::laplace_jacobi();
  problem.boundary = [n](long i, long j) {
    if (j < 0) return 100.0;  // heater on the west edge
    if (j >= n) return 0.0;   // ice bath on the east edge
    (void)i;
    return 100.0 * (1.0 - static_cast<double>(j) / (n - 1));  // linear ramp
  };
  problem.initial = [](long, long) { return 0.0; };

  std::printf("Heat plate %dx%d: west edge 100C, east edge 0C.\n", n, n);
  std::printf("Relaxing (up to) %d rounds of %d Jacobi iterations "
              "(CA s=%d, 2x2 virtual nodes) via solve_to_tolerance...\n\n",
              rounds, per_round, steps);

  stencil::DistConfig config;
  config.decomp = {n / 4, n / 4, 2, 2};
  config.steps = steps;
  config.workers_per_rank = 2;

  const double tolerance = 0.05;  // max change per round, in degrees C
  const stencil::IterativeSolveResult result = stencil::solve_to_tolerance(
      problem, config, tolerance, per_round, rounds);

  std::printf("ran %d iterations (%s), last per-round change %.4f C, "
              "%llu halo messages total\n",
              result.iterations,
              result.converged ? "converged" : "round cap reached",
              result.last_delta,
              static_cast<unsigned long long>(result.messages));

  std::printf("\nTemperature field (W=100C ... E=0C):\n");
  render(result.grid, 24, 64);
  const double center = result.grid.at(n / 2, n / 2);
  std::printf("\ncenter temperature: %.2f C (steady state: 50.00 C; plain "
              "Jacobi needs O(N^2) sweeps to converge)\n", center);
  return 0;
}
