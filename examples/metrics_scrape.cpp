// Observability walkthrough: run a small CA stencil with a metrics registry
// attached, scrape it in Prometheus text format, compare against the
// simulator's modeled counters, and write a machine-readable run report.
//
//   ./metrics_scrape              # defaults: N=256, 2x2 nodes, s=4
//   ./metrics_scrape --report=run.json
#include <iostream>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "sim/machine.hpp"
#include "sim/models.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/problem.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  const int n = static_cast<int>(options.get_int("n", 256));
  const int iters = static_cast<int>(options.get_int("iters", 8));
  const int steps = static_cast<int>(options.get_int("steps", 4));
  const int tile = n / 8;

  // 1. One registry, threaded through every layer of the run: the runtime
  //    tags per-worker task counts, the transport tags per-destination
  //    traffic, the driver tags superstep/redundancy counters.
  auto metrics = std::make_shared<obs::MetricsRegistry>();

  const stencil::Problem problem = stencil::laplace_problem(n, iters);
  stencil::DistConfig config;
  config.decomp = {tile, tile, 2, 2};
  config.steps = steps;
  config.workers_per_rank = 2;
  config.metrics = metrics;
  const stencil::DistResult result = run_distributed(problem, config);

  // 2. Scrape. In a long-running service this string is what you would serve
  //    on /metrics; here we print it.
  std::cout << "===== Prometheus scrape =====\n"
            << metrics->prometheus() << "\n";

  // 3. Cross-validate against the model: the simulator publishes the SAME
  //    family names (label source="sim") into its own registry, so
  //    model-vs-real agreement is a diff of two snapshots.
  sim::StencilSimParams params{sim::nacl(), n,     tile, 2, 2,
                               iters,       steps, 1.0};
  params.metrics = std::make_shared<obs::MetricsRegistry>();
  const sim::StencilSimOutput modeled = sim::simulate_stencil(params);

  const obs::MetricsSnapshot real_snap = metrics->snapshot();
  const obs::MetricsSnapshot sim_snap = params.metrics->snapshot();
  std::cout << "===== model vs real =====\n";
  std::cout << "real net_messages_total: "
            << real_snap.counter_total("net_messages_total")
            << "  modeled: " << sim_snap.counter_total("net_messages_total")
            << "\n";
  std::cout << "real rt_tasks_executed_total: "
            << real_snap.counter_total("rt_tasks_executed_total")
            << "  modeled: "
            << sim_snap.counter_total("rt_tasks_executed_total") << "\n";
  const double gflops = result.flops() / result.stats.wall_time_s / 1e9;
  std::cout << "measured GFLOP/s: " << gflops
            << "  modeled: " << modeled.gflops << "\n\n";

  // 4. Persist the whole run as one JSON document.
  obs::RunReport report("metrics_scrape_example");
  report.set_param("N", obs::Json(n));
  report.set_param("iters", obs::Json(iters));
  report.set_param("steps", obs::Json(steps));
  obs::Json row = obs::Json::object();
  row["gflops"] = obs::Json(gflops);
  row["messages"] = obs::Json(result.stats.messages);
  row["bytes"] = obs::Json(result.stats.bytes);
  report.add_result(std::move(row));
  report.add_metrics(*metrics);
  report.set_derived("modeled_gflops", obs::Json(modeled.gflops));

  const std::string path = options.get_string("report", "");
  if (!path.empty()) {
    report.write(path);
    std::cout << "wrote " << path << "\n";
  } else {
    std::cout << "===== run report (pass --report=<path> to save) =====\n"
              << report.to_string() << "\n";
  }
  return 0;
}
