// DTD showcase: tiled matrix multiplication by sequential task insertion.
//
// The Dynamic Task Discovery DSL (runtime/dtd.hpp) is PaRSEC's "write it
// like a sequential program" model: declare data, insert tasks in program
// order, let the runtime infer the DAG from data accesses. Tiled GEMM is the
// canonical demo: C(i,j) accumulates A(i,k)*B(k,j) over k, so the k-loop
// serializes per C tile (ReadWrite chains) while independent (i,j) tiles run
// in parallel across virtual ranks.
//
// Usage: dtd_blocked_matmul [--n=192] [--tiles=3] [--ranks=3]
#include <cmath>
#include <cstdio>
#include <vector>

#include "runtime/dtd.hpp"
#include "runtime/runtime.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

namespace {

using namespace repro;
using rt::dtd::Access;
using rt::dtd::DataHandle;

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const int n = static_cast<int>(options.get_int("n", 192));
  const int tiles = static_cast<int>(options.get_int("tiles", 3));
  const int ranks = static_cast<int>(options.get_int("ranks", 3));
  const int bs = n / tiles;

  std::printf("Tiled GEMM C = A*B: %dx%d, %dx%d tiles of %d, %d virtual "
              "ranks (DTD DSL)\n", n, n, tiles, tiles, bs, ranks);

  // Dense input tiles with deterministic random contents.
  Rng rng(4242);
  auto make_tile = [&](double scale) {
    std::vector<double> t(static_cast<std::size_t>(bs) * bs);
    for (double& v : t) v = scale * rng.uniform(-1.0, 1.0);
    return t;
  };

  rt::dtd::DtdProgram program;
  std::vector<DataHandle> a, b, c;
  std::vector<std::vector<double>> a_data, b_data;
  for (int i = 0; i < tiles; ++i) {
    for (int j = 0; j < tiles; ++j) {
      const int home = (i * tiles + j) % ranks;
      a_data.push_back(make_tile(1.0));
      b_data.push_back(make_tile(0.5));
      a.push_back(program.data("A" + std::to_string(i) + std::to_string(j),
                               home, a_data.back()));
      b.push_back(program.data("B" + std::to_string(i) + std::to_string(j),
                               home, b_data.back()));
      c.push_back(program.data("C" + std::to_string(i) + std::to_string(j),
                               home,
                               std::vector<double>(
                                   static_cast<std::size_t>(bs) * bs, 0.0)));
    }
  }
  auto at = [tiles](int i, int j) { return i * tiles + j; };

  // Sequential insertion, exactly as the algorithm reads on paper.
  for (int i = 0; i < tiles; ++i) {
    for (int j = 0; j < tiles; ++j) {
      for (int k = 0; k < tiles; ++k) {
        const DataHandle ta = a[static_cast<std::size_t>(at(i, k))];
        const DataHandle tb = b[static_cast<std::size_t>(at(k, j))];
        const DataHandle tc = c[static_cast<std::size_t>(at(i, j))];
        program.insert_task(
            "gemm", (i * tiles + j) % ranks,
            {{ta, Access::Read}, {tb, Access::Read}, {tc, Access::ReadWrite}},
            [ta, tb, tc, bs](rt::dtd::DtdTaskView& t) {
              const auto ma = t.read(ta);
              const auto mb = t.read(tb);
              auto mc = t.read_vector(tc);
              for (int r = 0; r < bs; ++r) {
                for (int kk = 0; kk < bs; ++kk) {
                  const double arv = ma[static_cast<std::size_t>(r) * bs + kk];
                  for (int col = 0; col < bs; ++col) {
                    mc[static_cast<std::size_t>(r) * bs + col] +=
                        arv * mb[static_cast<std::size_t>(kk) * bs + col];
                  }
                }
              }
              t.write(tc, std::move(mc));
            });
      }
    }
  }

  rt::TaskGraph graph = program.compile();
  rt::Config config;
  config.nranks = ranks;
  config.workers_per_rank = 2;
  rt::Runtime runtime(config);
  Timer timer;
  const rt::RunStats stats = runtime.run(graph);
  std::printf("%zu tasks (%d gemm + %d data sources) in %.1f ms, %llu remote "
              "messages\n", stats.tasks_executed, tiles * tiles * tiles,
              3 * tiles * tiles, timer.elapsed() * 1e3,
              static_cast<unsigned long long>(stats.messages));

  // Verify a straightforward serial matmul over the same tiles.
  double worst = 0.0;
  for (int i = 0; i < tiles; ++i) {
    for (int j = 0; j < tiles; ++j) {
      const auto handle = c[static_cast<std::size_t>(at(i, j))];
      const rt::Buffer got =
          runtime.result(program.result_key(handle),
                         program.result_slot(handle));
      std::vector<double> want(static_cast<std::size_t>(bs) * bs, 0.0);
      for (int k = 0; k < tiles; ++k) {
        const auto& ma = a_data[static_cast<std::size_t>(at(i, k))];
        const auto& mb = b_data[static_cast<std::size_t>(at(k, j))];
        for (int r = 0; r < bs; ++r) {
          for (int kk = 0; kk < bs; ++kk) {
            for (int col = 0; col < bs; ++col) {
              want[static_cast<std::size_t>(r) * bs + col] +=
                  ma[static_cast<std::size_t>(r) * bs + kk] *
                  mb[static_cast<std::size_t>(kk) * bs + col];
            }
          }
        }
      }
      for (std::size_t e = 0; e < want.size(); ++e) {
        worst = std::max(worst, std::fabs((*got)[e] - want[e]));
      }
    }
  }
  std::printf("max |DTD - serial| = %.3g -> %s\n", worst,
              worst < 1e-12 ? "MATCH" : "MISMATCH");
  return worst < 1e-12 ? 0 : 1;
}
