// PTG showcase: a blocked dynamic-programming wavefront.
//
// The Parameterized Task Graph DSL (runtime/ptg.hpp) mirrors PaRSEC's JDF:
// task classes with integer parameters and symbolic dataflow. A wavefront is
// the classic non-stencil pattern: block (bi,bj) needs its west and north
// neighbors, so anti-diagonals execute in parallel as the wave sweeps from
// the top-left corner — watch the trace: parallelism ramps 1, 2, 3, ...
//
// The computation is an edit-distance-style recurrence over a blocked table:
//   cell(i,j) = min(up + 1, left + 1, diag + (a[i] == b[j] ? 0 : 1))
// computed blockwise; each block task consumes its neighbors' boundary rows/
// columns. The result equals the classic O(n^2) sequential DP.
//
// Usage: ptg_wavefront [--n=512] [--blocks=8] [--ranks=3]
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/ptg.hpp"
#include "runtime/runtime.hpp"
#include "support/options.hpp"
#include "support/timing.hpp"

namespace {

using namespace repro;
using rt::ptg::Params;
using rt::ptg::PtgProgram;

/// Deterministic pseudo-random "strings" to align.
int symbol_a(int i) { return (i * 2654435761u) >> 28; }
int symbol_b(int j) { return (j * 2246822519u) >> 28; }

/// Sequential reference: full edit-distance table, returns last row.
std::vector<double> sequential_dp(int n) {
  std::vector<double> prev(static_cast<std::size_t>(n) + 1);
  std::vector<double> cur(prev.size());
  for (int j = 0; j <= n; ++j) prev[static_cast<std::size_t>(j)] = j;
  for (int i = 1; i <= n; ++i) {
    cur[0] = i;
    for (int j = 1; j <= n; ++j) {
      const double sub =
          prev[static_cast<std::size_t>(j - 1)] +
          (symbol_a(i - 1) == symbol_b(j - 1) ? 0.0 : 1.0);
      cur[static_cast<std::size_t>(j)] =
          std::min({prev[static_cast<std::size_t>(j)] + 1.0,
                    cur[static_cast<std::size_t>(j - 1)] + 1.0, sub});
    }
    std::swap(prev, cur);
  }
  return prev;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  const int n = static_cast<int>(options.get_int("n", 512));
  const int blocks = static_cast<int>(options.get_int("blocks", 8));
  const int ranks = static_cast<int>(options.get_int("ranks", 3));
  const int bs = n / blocks;  // block size

  std::printf("Blocked edit-distance wavefront: %dx%d table, %dx%d blocks, "
              "%d virtual ranks (PTG DSL)\n", n, n, blocks, blocks, ranks);

  // Each block task publishes: slot 0 = its south boundary row (bs+1 values
  // including the corner), slot 1 = its east boundary column (bs+1 values).
  // Block (bi,bj) consumes north's south row, west's east column. The
  // off-table edges use the DP base case (distance = index).
  PtgProgram program;
  auto& block = program.task_class("block");
  block.parameter("bi", 0, blocks - 1)
      .parameter("bj", 0, blocks - 1)
      .rank([ranks](const Params& p) { return (p[0] + p[1]) % ranks; })
      .klass([blocks](const Params& p) {
        return "diag" + std::to_string(p[0] + p[1]);
      })
      .flow([&block](const Params& p) {
        std::vector<rt::ptg::FlowEnd> flows;
        if (p[0] > 0) {
          flows.push_back(
              PtgProgram::ref(block, Params{{p[0] - 1, p[1], 0}}, 0));
        }
        if (p[1] > 0) {
          flows.push_back(
              PtgProgram::ref(block, Params{{p[0], p[1] - 1, 0}}, 1));
        }
        return flows;
      })
      .body([bs](rt::TaskContext& ctx, const Params& p) {
        const int bi = p[0];
        const int bj = p[1];
        const int i0 = bi * bs;  // global row of this block's first cell
        const int j0 = bj * bs;

        // Assemble the (bs+1) x (bs+1) working table: row 0 and column 0
        // hold neighbor boundaries (or base-case values on the table edge).
        const int ld = bs + 1;
        std::vector<double> t(static_cast<std::size_t>(ld) * ld);
        std::size_t next = 0;
        if (bi > 0) {
          const auto north = ctx.input(next++);
          std::copy(north.begin(), north.end(), t.begin());
        } else {
          for (int j = 0; j <= bs; ++j) t[static_cast<std::size_t>(j)] = j0 + j;
        }
        if (bj > 0) {
          const auto west = ctx.input(next++);
          for (int i = 0; i <= bs; ++i) {
            t[static_cast<std::size_t>(i) * ld] = west[static_cast<std::size_t>(i)];
          }
        } else {
          for (int i = 0; i <= bs; ++i) {
            t[static_cast<std::size_t>(i) * ld] = i0 + i;
          }
        }

        for (int i = 1; i <= bs; ++i) {
          for (int j = 1; j <= bs; ++j) {
            const double up = t[static_cast<std::size_t>(i - 1) * ld + j];
            const double left = t[static_cast<std::size_t>(i) * ld + (j - 1)];
            const double diag = t[static_cast<std::size_t>(i - 1) * ld + (j - 1)];
            const bool match =
                symbol_a(i0 + i - 1) == symbol_b(j0 + j - 1);
            t[static_cast<std::size_t>(i) * ld + j] =
                std::min({up + 1.0, left + 1.0, diag + (match ? 0.0 : 1.0)});
          }
        }

        std::vector<double> south(static_cast<std::size_t>(bs) + 1);
        std::vector<double> east(static_cast<std::size_t>(bs) + 1);
        for (int j = 0; j <= bs; ++j) {
          south[static_cast<std::size_t>(j)] =
              t[static_cast<std::size_t>(bs) * ld + j];
        }
        for (int i = 0; i <= bs; ++i) {
          east[static_cast<std::size_t>(i)] =
              t[static_cast<std::size_t>(i) * ld + bs];
        }
        ctx.publish(0, std::move(south));
        ctx.publish(1, std::move(east));
      });

  rt::TaskGraph graph = program.unfold();
  rt::Config config;
  config.nranks = ranks;
  config.workers_per_rank = 2;
  config.trace = true;
  rt::Runtime runtime(config);
  Timer timer;
  const rt::RunStats stats = runtime.run(graph);

  // The final block's south row ends with the edit distance of the full
  // strings; compare the whole last row against the sequential DP.
  const auto expected = sequential_dp(n);
  const rt::Buffer last = runtime.result(
      PtgProgram::key_of(block, Params{{blocks - 1, blocks - 1, 0}}), 0);
  double worst = 0.0;
  for (int j = 0; j <= bs; ++j) {
    const double got = (*last)[static_cast<std::size_t>(j)];
    const double want = expected[static_cast<std::size_t>(n - bs + j)];
    worst = std::max(worst, std::abs(got - want));
  }

  std::printf("%zu block tasks in %.1f ms, %llu remote messages\n",
              stats.tasks_executed, timer.elapsed() * 1e3,
              static_cast<unsigned long long>(stats.messages));
  std::printf("edit distance(A[0..%d), B[0..%d)) = %.0f  (sequential: %.0f)\n",
              n, n, (*last)[static_cast<std::size_t>(bs)],
              expected[static_cast<std::size_t>(n)]);
  std::printf("max |PTG - sequential| over the final row: %g -> %s\n", worst,
              worst == 0.0 ? "EXACT" : "MISMATCH");

  // Show the wavefront: tasks per anti-diagonal from the trace labels.
  std::printf("\nwavefront occupancy (tasks per anti-diagonal executed):\n  ");
  std::vector<int> per_diag(static_cast<std::size_t>(2 * blocks - 1));
  for (const auto& e : runtime.tracer().events()) {
    per_diag[std::stoul(e.klass.substr(4))]++;
  }
  for (std::size_t d = 0; d < per_diag.size(); ++d) {
    std::printf("%d ", per_diag[d]);
  }
  std::printf("\n");
  return worst == 0.0 ? 0 : 1;
}
