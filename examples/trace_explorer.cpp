// Trace explorer: run the real task runtime with tracing and inspect the
// schedule — an interactive mini-version of the paper's Fig. 10 workflow.
//
// Runs the same problem in base and CA mode, prints per-class kernel
// statistics, per-rank occupancy, and an ASCII Gantt chart, and optionally
// dumps the raw events as CSV for external plotting.
//
// Usage: trace_explorer [--n=384] [--iters=10] [--steps=4] [--nodes=2]
//                       [--workers=2] [--ratio=1.0] [--csv]
#include <fstream>
#include <iostream>

#include "runtime/trace.hpp"
#include "stencil/dist_stencil.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  const int n = static_cast<int>(options.get_int("n", 384));
  const int iters = static_cast<int>(options.get_int("iters", 10));
  const int ca_steps = static_cast<int>(options.get_int("steps", 4));
  const int nodes = static_cast<int>(options.get_int("nodes", 2));
  const int workers = static_cast<int>(options.get_int("workers", 2));
  const double ratio = options.get_double("ratio", 1.0);

  const stencil::Problem problem = stencil::laplace_problem(n, iters);

  for (const int steps : {1, ca_steps}) {
    stencil::DistConfig config;
    config.decomp = {n / (4 * nodes), n / (4 * nodes), nodes, nodes};
    config.steps = steps;
    config.kernel_ratio = ratio;
    config.workers_per_rank = workers;
    config.trace = true;

    const stencil::DistResult result = run_distributed(problem, config);
    const rt::TraceReport report =
        rt::analyze_trace(result.trace_events, workers);

    print_banner(std::cout,
                 steps == 1 ? "base version (exchange every iteration)"
                            : "CA version (s=" + std::to_string(steps) + ")");
    std::cout << "tasks: " << result.stats.tasks_executed
              << "  remote messages: " << result.stats.messages << " ("
              << result.stats.bytes << " B)"
              << "  redundant work: " << Table::cell(100 * result.redundancy(), 2)
              << "%\n";

    Table stats({"task class", "count", "median duration us"});
    for (const auto& [klass, med] : report.median_duration_by_klass) {
      stats.add_row({klass,
                     Table::cell(static_cast<long long>(
                         report.count_by_klass.at(klass))),
                     Table::cell(med * 1e6, 1)});
    }
    stats.print(std::cout);

    std::cout << "per-rank occupancy:";
    for (const auto& [rank, occ] : report.occupancy_by_rank) {
      std::cout << "  rank" << rank << " " << Table::cell(100.0 * occ, 1)
                << "%";
    }
    std::cout << "\n\n";
    rt::print_ascii_gantt(result.trace_events, std::cout, 100);

    if (options.get_bool("csv", false)) {
      const std::string path = steps == 1 ? "trace_base.csv" : "trace_ca.csv";
      std::ofstream out(path);
      rt::write_trace_csv(result.trace_events, out);
      std::cout << "(wrote " << path << ")\n";
    }
  }
  return 0;
}
