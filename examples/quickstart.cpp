// Quickstart: solve a 2D Laplace problem with the distributed task runtime.
//
// Demonstrates the core public API in ~40 lines:
//   1. describe the Problem (grid, iterations, weights, boundary/initial),
//   2. pick a Decomposition (tile size, virtual node grid) and step size,
//   3. run_distributed(), and
//   4. check the answer against the serial reference.
//
// Usage: quickstart [--n=256] [--iters=100] [--steps=5] [--nodes=2]
#include <cstdio>

#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const Options options(argc, argv);
  const int n = static_cast<int>(options.get_int("n", 256));
  const int iters = static_cast<int>(options.get_int("iters", 100));
  const int steps = static_cast<int>(options.get_int("steps", 5));
  const int nodes = static_cast<int>(options.get_int("nodes", 2));

  // 1. The problem: Laplace's equation, hot west wall, zero initial field.
  const stencil::Problem problem = stencil::laplace_problem(n, iters);

  // 2. The decomposition: tiles of n/8, a nodes x nodes virtual process
  //    grid, and the communication-avoiding scheme with the given step size.
  stencil::DistConfig config;
  config.decomp = {n / 8, n / 8, nodes, nodes};
  config.steps = steps;
  config.workers_per_rank = 2;

  // 3. Run.
  const stencil::DistResult result = run_distributed(problem, config);

  // 4. Verify bit-for-bit against the serial reference.
  const stencil::Grid2D reference = solve_serial(problem);
  const double diff = stencil::Grid2D::max_abs_diff(reference, result.grid);

  std::printf("grid          : %d x %d, %d Jacobi iterations\n", n, n, iters);
  std::printf("decomposition : %d x %d virtual nodes, tiles %d x %d, CA s=%d\n",
              nodes, nodes, n / 8, n / 8, steps);
  std::printf("tasks         : %zu   remote messages: %llu (%llu bytes)\n",
              result.stats.tasks_executed,
              static_cast<unsigned long long>(result.stats.messages),
              static_cast<unsigned long long>(result.stats.bytes));
  std::printf("redundant work: %.2f%% (the CA tradeoff)\n",
              100.0 * result.redundancy());
  std::printf("wall time     : %.1f ms   (%.2f GFLOP/s on this host)\n",
              result.stats.wall_time_s * 1e3,
              result.flops() / result.stats.wall_time_s / 1e9);
  std::printf("max |dist - serial| = %.3g  -> %s\n", diff,
              diff == 0.0 ? "EXACT MATCH" : "MISMATCH");
  return diff == 0.0 ? 0 : 1;
}
